package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/trace"
)

// Version is the build version string, stamped by the release build via
//
//	go build -ldflags "-X repro/internal/server.Version=v1.2.3"
//
// and surfaced by citeserved_build_info, /healthz and citeserved
// -version. "dev" marks unstamped builds.
var Version = "dev"

// endpointStats accumulates per-endpoint request counters and a native
// latency histogram (buckets from 100µs to 10s), so dashboards get tail
// quantiles, not just the mean.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	latency  *trace.Histogram
}

// serverMetrics is the server's counter set, exposed on GET /metrics in
// Prometheus text exposition format. Everything is atomics — recording a
// request never takes a lock.
type serverMetrics struct {
	endpoints map[string]*endpointStats // fixed key set, read-only after init
	inflight  atomic.Int64              // requests currently being handled
	rejected  atomic.Int64              // admission-control rejections (503)
	timeouts  atomic.Int64              // per-request deadline expiries (504)
	// stages holds per-pipeline-stage engine-time histograms, fed from
	// finished request traces (one observation per ended span).
	stages *trace.HistogramVec
	// admissionWait is the time /cite requests spend queueing on the
	// in-flight semaphore (rejections included, measured until the
	// deadline fired). Always on, like the endpoint latencies — the
	// admission *span* exists only on sampled requests.
	admissionWait *trace.Histogram
}

func newServerMetrics(endpoints []string) *serverMetrics {
	m := &serverMetrics{
		endpoints:     make(map[string]*endpointStats, len(endpoints)),
		stages:        trace.NewHistogramVec(nil),
		admissionWait: trace.NewHistogram(nil),
	}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointStats{latency: trace.NewHistogram(nil)}
	}
	return m
}

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush passes through to the underlying writer's http.Flusher, so
// streaming endpoints behind the instrumentation wrapper can still push
// partial responses to the client.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an endpoint handler with request/error/latency
// accounting under the endpoint's label.
func (m *serverMetrics) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	stats := m.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// Deferred so a panicking handler (recovered per-connection by
		// net/http) cannot leak the inflight gauge or skip accounting.
		defer func() {
			m.inflight.Add(-1)
			stats.requests.Add(1)
			stats.latency.Observe(time.Since(start))
			if rec.status >= 400 {
				stats.errors.Add(1)
			}
		}()
		h(rec, r)
	}
}

// labelEscaper rewrites a label value for the Prometheus text exposition
// format, which escapes exactly backslash, double-quote and newline
// inside quoted label values. Go's %q is close but not conformant — it
// escapes every control character (a tab becomes the two bytes \t,
// which a strict scraper rejects), so label values are escaped here and
// rendered with plain %s inside hand-written quotes.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel returns the label value escaped per the text exposition
// spec. Any string — a query fingerprint, an fsync mode, a version
// string — is safe to interpolate after this.
func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// writeHistogram renders one label's histogram as a Prometheus family
// member: cumulative _bucket series (with the mandatory +Inf bucket),
// then _sum and _count.
func writeHistogram(w *strings.Builder, name, label, labelValue string, s trace.HistogramSnapshot) {
	lv := escapeLabel(labelValue)
	for i, bound := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"%s\"} %d\n",
			name, label, lv, strconv.FormatFloat(bound, 'g', -1, 64), s.Cumulative[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", name, label, lv, s.Count)
	fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %g\n", name, label, lv, s.Sum)
	fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", name, label, lv, s.Count)
}

// writeBareHistogram renders an unlabeled histogram family.
func writeBareHistogram(w *strings.Builder, name string, s trace.HistogramSnapshot) {
	for i, bound := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			name, strconv.FormatFloat(bound, 'g', -1, 64), s.Cumulative[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// render writes the metrics in Prometheus text exposition format. The
// gauge values that belong to other components (cache counters, store
// version, epoch) are passed in by the server.
func (m *serverMetrics) render(w *strings.Builder, s *Server) {
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	histogram := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	names := make([]string, 0, len(m.endpoints))
	for e := range m.endpoints {
		names = append(names, e)
	}
	sort.Strings(names)

	counter("citeserved_requests_total", "Requests handled, by endpoint.")
	for _, e := range names {
		fmt.Fprintf(w, "citeserved_requests_total{endpoint=\"%s\"} %d\n", escapeLabel(e), m.endpoints[e].requests.Load())
	}
	counter("citeserved_request_errors_total", "Responses with status >= 400, by endpoint.")
	for _, e := range names {
		fmt.Fprintf(w, "citeserved_request_errors_total{endpoint=\"%s\"} %d\n", escapeLabel(e), m.endpoints[e].errors.Load())
	}
	histogram("citeserved_request_duration_seconds", "Request handling latency, by endpoint.")
	for _, e := range names {
		writeHistogram(w, "citeserved_request_duration_seconds", "endpoint", e, m.endpoints[e].latency.Snapshot())
	}
	if stages := m.stages.Labels(); len(stages) > 0 {
		histogram("citeserved_stage_duration_seconds", "Engine time per pipeline stage, from sampled request traces.")
		for _, st := range stages {
			writeHistogram(w, "citeserved_stage_duration_seconds", "stage", st, m.stages.Get(st).Snapshot())
		}
	}

	cs := s.CacheStats()
	counter("citeserved_cache_hits_total", "Citations served from the result cache.")
	fmt.Fprintf(w, "citeserved_cache_hits_total %d\n", cs.Hits)
	counter("citeserved_cache_misses_total", "Citations computed by the engine (one per cache miss).")
	fmt.Fprintf(w, "citeserved_cache_misses_total %d\n", cs.Misses)
	counter("citeserved_cache_coalesced_total", "Requests that joined an in-flight computation.")
	fmt.Fprintf(w, "citeserved_cache_coalesced_total %d\n", cs.Coalesced)
	counter("citeserved_cache_evictions_total", "Cache entries evicted at capacity.")
	fmt.Fprintf(w, "citeserved_cache_evictions_total %d\n", cs.Evictions)
	counter("citeserved_result_cache_kept_total", "Head entries that survived a commit/ingest because their read-set was untouched.")
	fmt.Fprintf(w, "citeserved_result_cache_kept_total %d\n", cs.Kept)
	counter("citeserved_result_cache_evicted_total", "Head entries invalidated because a commit/ingest touched a relation they read.")
	fmt.Fprintf(w, "citeserved_result_cache_evicted_total %d\n", cs.Invalidated)
	gauge("citeserved_cache_entries", "Cached citation results.")
	fmt.Fprintf(w, "citeserved_cache_entries %d\n", cs.Entries)

	gc := s.sys.Generator().Counters()
	counter("citeserved_plan_cache_kept_total", "Compiled plans that survived a delta invalidation.")
	fmt.Fprintf(w, "citeserved_plan_cache_kept_total %d\n", gc.PlansKept)
	counter("citeserved_plan_cache_evicted_total", "Compiled plans evicted by a delta invalidation.")
	fmt.Fprintf(w, "citeserved_plan_cache_evicted_total %d\n", gc.PlansEvicted)
	counter("citeserved_view_cache_kept_total", "Materialized views that survived a delta invalidation.")
	fmt.Fprintf(w, "citeserved_view_cache_kept_total %d\n", gc.ViewsKept)
	counter("citeserved_view_cache_evicted_total", "Materialized views evicted by a delta invalidation.")
	fmt.Fprintf(w, "citeserved_view_cache_evicted_total %d\n", gc.ViewsEvicted)
	counter("citeserved_atom_cache_kept_total", "Atom-cache entries that survived a delta invalidation.")
	fmt.Fprintf(w, "citeserved_atom_cache_kept_total %d\n", gc.AtomsKept)
	counter("citeserved_atom_cache_evicted_total", "Atom-cache entries evicted by a delta invalidation.")
	fmt.Fprintf(w, "citeserved_atom_cache_evicted_total %d\n", gc.AtomsEvicted)
	counter("citeserved_branch_cache_kept_total", "Cached branch evaluations that survived a delta invalidation.")
	fmt.Fprintf(w, "citeserved_branch_cache_kept_total %d\n", gc.BranchesKept)
	counter("citeserved_branch_cache_evicted_total", "Cached branch evaluations evicted by a delta invalidation.")
	fmt.Fprintf(w, "citeserved_branch_cache_evicted_total %d\n", gc.BranchesEvicted)

	cu := storage.ColumnarUsage()
	counter("citeserved_columnar_blocks_total", "Dictionary-encoded columnar blocks built (mutable relations and frozen snapshots).")
	fmt.Fprintf(w, "citeserved_columnar_blocks_total %d\n", cu.BlocksBuilt)
	counter("citeserved_columnar_snapshots_total", "Frozen snapshot relations columnarized (built on demand or inherited at commit).")
	fmt.Fprintf(w, "citeserved_columnar_snapshots_total %d\n", cu.SnapshotsColumnarized)
	counter("citeserved_columnar_dict_bytes_total", "Cumulative dictionary bytes built into columnar blocks.")
	fmt.Fprintf(w, "citeserved_columnar_dict_bytes_total %d\n", cu.DictBytes)
	counter("citeserved_columnar_code_bytes_total", "Cumulative code-vector and posting-list bytes built into columnar blocks.")
	fmt.Fprintf(w, "citeserved_columnar_code_bytes_total %d\n", cu.CodeBytes)

	counter("citeserved_rejected_total", "Requests rejected by admission control.")
	fmt.Fprintf(w, "citeserved_rejected_total %d\n", m.rejected.Load())
	counter("citeserved_timeouts_total", "Requests that exceeded the per-request deadline.")
	fmt.Fprintf(w, "citeserved_timeouts_total %d\n", m.timeouts.Load())
	gauge("citeserved_inflight_requests", "Requests currently being handled.")
	fmt.Fprintf(w, "citeserved_inflight_requests %d\n", m.inflight.Load())
	histogram("citeserved_admission_wait_seconds", "Time /cite requests queue on the admission semaphore (rejections included).")
	writeBareHistogram(w, "citeserved_admission_wait_seconds", m.admissionWait.Snapshot())

	if s.qstats != nil {
		qs := s.qstats.Stats()
		gauge("citeserved_querystats_tracked", "Query fingerprints currently tracked by the statistics sketch.")
		fmt.Fprintf(w, "citeserved_querystats_tracked %d\n", qs.Tracked)
		counter("citeserved_querystats_evicted_total", "Fingerprints displaced from the sketch at capacity (saturation signal).")
		fmt.Fprintf(w, "citeserved_querystats_evicted_total %d\n", qs.Evicted)
		counter("citeserved_querystats_observations_total", "Query calls observed by the statistics store.")
		fmt.Fprintf(w, "citeserved_querystats_observations_total %d\n", qs.Observations)
	}
	epoch, storeVersion := s.sys.Versions()
	gauge("citeserved_epoch", "System version token (bumped by commit/view/policy changes).")
	fmt.Fprintf(w, "citeserved_epoch %d\n", epoch)
	gauge("citeserved_store_version", "Latest committed store version.")
	fmt.Fprintf(w, "citeserved_store_version %d\n", storeVersion)

	gauge("citeserved_build_info", "Build metadata; the value is always 1.")
	fmt.Fprintf(w, "citeserved_build_info{version=\"%s\",go_version=\"%s\"} 1\n", escapeLabel(Version), escapeLabel(runtime.Version()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("citeserved_goroutines", "Goroutines currently live in the process.")
	fmt.Fprintf(w, "citeserved_goroutines %d\n", runtime.NumGoroutine())
	gauge("citeserved_heap_alloc_bytes", "Heap bytes allocated and still in use.")
	fmt.Fprintf(w, "citeserved_heap_alloc_bytes %d\n", ms.HeapAlloc)
	gauge("citeserved_heap_sys_bytes", "Heap bytes obtained from the OS.")
	fmt.Fprintf(w, "citeserved_heap_sys_bytes %d\n", ms.HeapSys)
	counter("citeserved_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.")
	fmt.Fprintf(w, "citeserved_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/float64(time.Second))
	counter("citeserved_gc_cycles_total", "Completed GC cycles.")
	fmt.Fprintf(w, "citeserved_gc_cycles_total %d\n", ms.NumGC)

	if dur, ok := s.sys.Durability(); ok {
		gauge("citeserved_wal_segments", "Commit-log segment files on disk (active included).")
		fmt.Fprintf(w, "citeserved_wal_segments %d\n", dur.Segments)
		gauge("citeserved_wal_bytes_since_checkpoint", "Log bytes appended since the last checkpoint.")
		fmt.Fprintf(w, "citeserved_wal_bytes_since_checkpoint %d\n", dur.BytesSinceCheckpoint)
		counter("citeserved_checkpoints_total", "Checkpoints written by this process.")
		fmt.Fprintf(w, "citeserved_checkpoints_total %d\n", dur.Checkpoints)
		gauge("citeserved_recovery_seconds", "Duration of the boot recovery (0 = fresh start).")
		fmt.Fprintf(w, "citeserved_recovery_seconds %g\n", dur.LastRecovery.Seconds())
		gauge("citeserved_recovered_version", "Latest committed version rebuilt from the data directory at boot.")
		fmt.Fprintf(w, "citeserved_recovered_version %d\n", dur.RecoveredVersion)
		gauge("citeserved_wal_fsync_mode", "Active fsync policy (1 for the mode in the label).")
		fmt.Fprintf(w, "citeserved_wal_fsync_mode{mode=\"%s\"} 1\n", escapeLabel(string(dur.Fsync)))
	}
}
