package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// endpointStats accumulates per-endpoint request counters with a
// seconds-sum/count latency pair (enough for rate and mean-latency
// dashboards without a histogram dependency).
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	nanos    atomic.Int64 // total handling time
}

// serverMetrics is the server's counter set, exposed on GET /metrics in
// Prometheus text exposition format. Everything is atomics — recording a
// request never takes a lock.
type serverMetrics struct {
	endpoints map[string]*endpointStats // fixed key set, read-only after init
	inflight  atomic.Int64              // requests currently being handled
	rejected  atomic.Int64              // admission-control rejections (503)
	timeouts  atomic.Int64              // per-request deadline expiries (504)
}

func newServerMetrics(endpoints []string) *serverMetrics {
	m := &serverMetrics{endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointStats{}
	}
	return m
}

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// instrument wraps an endpoint handler with request/error/latency
// accounting under the endpoint's label.
func (m *serverMetrics) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	stats := m.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// Deferred so a panicking handler (recovered per-connection by
		// net/http) cannot leak the inflight gauge or skip accounting.
		defer func() {
			m.inflight.Add(-1)
			stats.requests.Add(1)
			stats.nanos.Add(int64(time.Since(start)))
			if rec.status >= 400 {
				stats.errors.Add(1)
			}
		}()
		h(rec, r)
	}
}

// render writes the metrics in Prometheus text exposition format. The
// gauge values that belong to other components (cache counters, store
// version, epoch) are passed in by the server.
func (m *serverMetrics) render(w *strings.Builder, s *Server) {
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	names := make([]string, 0, len(m.endpoints))
	for e := range m.endpoints {
		names = append(names, e)
	}
	sort.Strings(names)

	counter("citeserved_requests_total", "Requests handled, by endpoint.")
	for _, e := range names {
		fmt.Fprintf(w, "citeserved_requests_total{endpoint=%q} %d\n", e, m.endpoints[e].requests.Load())
	}
	counter("citeserved_request_errors_total", "Responses with status >= 400, by endpoint.")
	for _, e := range names {
		fmt.Fprintf(w, "citeserved_request_errors_total{endpoint=%q} %d\n", e, m.endpoints[e].errors.Load())
	}
	counter("citeserved_request_seconds_total", "Total request handling time, by endpoint.")
	for _, e := range names {
		fmt.Fprintf(w, "citeserved_request_seconds_total{endpoint=%q} %g\n", e,
			float64(m.endpoints[e].nanos.Load())/float64(time.Second))
	}

	cs := s.CacheStats()
	counter("citeserved_cache_hits_total", "Citations served from the result cache.")
	fmt.Fprintf(w, "citeserved_cache_hits_total %d\n", cs.Hits)
	counter("citeserved_cache_misses_total", "Citations computed by the engine (one per cache miss).")
	fmt.Fprintf(w, "citeserved_cache_misses_total %d\n", cs.Misses)
	counter("citeserved_cache_coalesced_total", "Requests that joined an in-flight computation.")
	fmt.Fprintf(w, "citeserved_cache_coalesced_total %d\n", cs.Coalesced)
	counter("citeserved_cache_evictions_total", "Cache entries evicted at capacity.")
	fmt.Fprintf(w, "citeserved_cache_evictions_total %d\n", cs.Evictions)
	counter("citeserved_result_cache_kept_total", "Head entries that survived a commit/ingest because their read-set was untouched.")
	fmt.Fprintf(w, "citeserved_result_cache_kept_total %d\n", cs.Kept)
	counter("citeserved_result_cache_evicted_total", "Head entries invalidated because a commit/ingest touched a relation they read.")
	fmt.Fprintf(w, "citeserved_result_cache_evicted_total %d\n", cs.Invalidated)
	gauge("citeserved_cache_entries", "Cached citation results.")
	fmt.Fprintf(w, "citeserved_cache_entries %d\n", cs.Entries)

	gc := s.sys.Generator().Counters()
	counter("citeserved_plan_cache_kept_total", "Compiled plans that survived a delta invalidation.")
	fmt.Fprintf(w, "citeserved_plan_cache_kept_total %d\n", gc.PlansKept)
	counter("citeserved_plan_cache_evicted_total", "Compiled plans evicted by a delta invalidation.")
	fmt.Fprintf(w, "citeserved_plan_cache_evicted_total %d\n", gc.PlansEvicted)
	counter("citeserved_view_cache_kept_total", "Materialized views that survived a delta invalidation.")
	fmt.Fprintf(w, "citeserved_view_cache_kept_total %d\n", gc.ViewsKept)
	counter("citeserved_view_cache_evicted_total", "Materialized views evicted by a delta invalidation.")
	fmt.Fprintf(w, "citeserved_view_cache_evicted_total %d\n", gc.ViewsEvicted)
	counter("citeserved_atom_cache_kept_total", "Atom-cache entries that survived a delta invalidation.")
	fmt.Fprintf(w, "citeserved_atom_cache_kept_total %d\n", gc.AtomsKept)
	counter("citeserved_atom_cache_evicted_total", "Atom-cache entries evicted by a delta invalidation.")
	fmt.Fprintf(w, "citeserved_atom_cache_evicted_total %d\n", gc.AtomsEvicted)

	counter("citeserved_rejected_total", "Requests rejected by admission control.")
	fmt.Fprintf(w, "citeserved_rejected_total %d\n", m.rejected.Load())
	counter("citeserved_timeouts_total", "Requests that exceeded the per-request deadline.")
	fmt.Fprintf(w, "citeserved_timeouts_total %d\n", m.timeouts.Load())
	gauge("citeserved_inflight_requests", "Requests currently being handled.")
	fmt.Fprintf(w, "citeserved_inflight_requests %d\n", m.inflight.Load())
	epoch, storeVersion := s.sys.Versions()
	gauge("citeserved_epoch", "System version token (bumped by commit/view/policy changes).")
	fmt.Fprintf(w, "citeserved_epoch %d\n", epoch)
	gauge("citeserved_store_version", "Latest committed store version.")
	fmt.Fprintf(w, "citeserved_store_version %d\n", storeVersion)

	if dur, ok := s.sys.Durability(); ok {
		gauge("citeserved_wal_segments", "Commit-log segment files on disk (active included).")
		fmt.Fprintf(w, "citeserved_wal_segments %d\n", dur.Segments)
		gauge("citeserved_wal_bytes_since_checkpoint", "Log bytes appended since the last checkpoint.")
		fmt.Fprintf(w, "citeserved_wal_bytes_since_checkpoint %d\n", dur.BytesSinceCheckpoint)
		counter("citeserved_checkpoints_total", "Checkpoints written by this process.")
		fmt.Fprintf(w, "citeserved_checkpoints_total %d\n", dur.Checkpoints)
		gauge("citeserved_recovery_seconds", "Duration of the boot recovery (0 = fresh start).")
		fmt.Fprintf(w, "citeserved_recovery_seconds %g\n", dur.LastRecovery.Seconds())
		gauge("citeserved_recovered_version", "Latest committed version rebuilt from the data directory at boot.")
		fmt.Fprintf(w, "citeserved_recovered_version %d\n", dur.RecoveredVersion)
		gauge("citeserved_wal_fsync_mode", "Active fsync policy (1 for the mode in the label).")
		fmt.Fprintf(w, "citeserved_wal_fsync_mode{mode=%q} 1\n", dur.Fsync)
	}
}
