package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixity"
	"repro/internal/format"
	"repro/internal/spec"
	"repro/internal/value"
)

const paperQuery = "Q(FName) :- Family(FID, FName, Desc)"

// paperServer loads testdata/paper.dcs, commits an initial version, and
// wraps the system in a test server.
func paperServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "paper.dcs"))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Load(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	sys.Commit("test base")
	srv := New(sys, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, client *http.Client, url string, into any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("response not JSON: %v\n%s", err, raw)
		}
	}
	return resp
}

func TestCiteSingle(t *testing.T) {
	_, ts := paperServer(t, Options{})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response: %v\n%s", err, body)
	}
	if out.Result == nil || out.Results != nil {
		t.Fatalf("single request must answer with result, not results: %s", body)
	}
	if out.Version != 1 || out.Epoch < 1 {
		t.Errorf("version=%d epoch=%d", out.Version, out.Epoch)
	}
	if got := out.Result.Record[format.FieldDatabase]; len(got) == 0 {
		t.Errorf("citation has no database field: %s", body)
	}
	if out.Result.Pin == nil || out.Result.Pin.Version != 1 || out.Result.Pin.SHA256 == "" {
		t.Errorf("missing or malformed pin: %+v", out.Result.Pin)
	}
	if out.Result.Cache != "miss" {
		t.Errorf("first request cache status %q", out.Result.Cache)
	}
	if !strings.Contains(out.Result.Text, "sha256=") {
		t.Errorf("text rendering lost the pin: %q", out.Result.Text)
	}
}

// TestCiteWireMatchesDiskRenderer decodes the record the server emits
// and compares it field-by-field against what the engine + format.JSON
// produce locally — the citation renders identically on disk and on the
// wire.
func TestCiteWireMatchesDiskRenderer(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	_, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}

	cite, err := srv.System().Cite(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Record.Equal(cite.Result.Record) {
		t.Errorf("wire record != engine record:\n%v\n%v", out.Result.Record, cite.Result.Record)
	}
	rendered, err := format.JSON(cite.Result.Record)
	if err != nil {
		t.Fatal(err)
	}
	var fromDisk format.Record
	if err := json.Unmarshal([]byte(rendered), &fromDisk); err != nil {
		t.Fatal(err)
	}
	if !out.Result.Record.Equal(fromDisk) {
		t.Errorf("wire record != format.JSON record:\n%v\n%s", out.Result.Record, rendered)
	}
	for f, vs := range fromDisk {
		ws := out.Result.Record[f]
		if len(ws) != len(vs) {
			t.Fatalf("field %s: wire has %d values, disk %d", f, len(ws), len(vs))
		}
		for i := range vs {
			if ws[i] != vs[i] {
				t.Errorf("field %s[%d]: wire %q, disk %q", f, i, ws[i], vs[i])
			}
		}
	}
}

// TestConcurrentCiteComputesOnce is the acceptance race test: many
// concurrent POST /cite for the same query at the same version must
// compute the citation exactly once — every other request is served by
// coalescing onto the in-flight computation or by the result cache.
func TestConcurrentCiteComputesOnce(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	var computations atomic.Int64
	inner := srv.citer
	srv.citer = func(ctx context.Context, queries []string, v fixity.Version) ([]*core.Citation, []error) {
		computations.Add(int64(len(queries)))
		return inner(ctx, queries, v)
	}

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var out citeResponse
			if err := json.Unmarshal(body, &out); err != nil {
				errs <- err
				return
			}
			if out.Result == nil || len(out.Result.Record) == 0 {
				errs <- fmt.Errorf("empty citation: %s", body)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := computations.Load(); got != 1 {
		t.Errorf("citation computed %d times for %d concurrent clients, want exactly 1", got, clients)
	}
	stats := srv.CacheStats()
	if stats.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", stats.Misses)
	}
	if stats.Hits+stats.Coalesced != clients-1 {
		t.Errorf("hits(%d)+coalesced(%d) = %d, want %d",
			stats.Hits, stats.Coalesced, stats.Hits+stats.Coalesced, clients-1)
	}
}

// TestCommitInvalidatesCache is the second acceptance half: POST /commit
// bumps the version, and the next cite recomputes against the new state
// instead of serving the stale cached result.
func TestCommitInvalidatesCache(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	client := ts.Client()

	_, body := postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	var first citeResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	// Served from cache on repeat.
	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	var repeat citeResponse
	if err := json.Unmarshal(body, &repeat); err != nil {
		t.Fatal(err)
	}
	if repeat.Result.Cache != "hit" {
		t.Errorf("repeat request cache status %q, want hit", repeat.Result.Cache)
	}

	// Mutate the head so the new version's citation differs, then commit.
	db := srv.System().Database()
	if err := db.Insert("Family", value.Int(13), value.String("Adrenomedullin"), value.String("C3")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Committee", value.Int(13), value.String("Dave")); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, client, ts.URL+"/commit", commitRequest{Message: "add family 13"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit status %d: %s", resp.StatusCode, body)
	}
	var commitOut struct {
		Epoch   int64 `json:"epoch"`
		Version int   `json:"version"`
	}
	if err := json.Unmarshal(body, &commitOut); err != nil {
		t.Fatal(err)
	}
	if commitOut.Version != 2 || commitOut.Epoch <= first.Epoch {
		t.Errorf("commit version=%d epoch=%d (was %d)", commitOut.Version, commitOut.Epoch, first.Epoch)
	}

	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	var after citeResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Result.Cache != "miss" {
		t.Errorf("post-commit request cache status %q, want miss (cache invalidated)", after.Result.Cache)
	}
	if after.Version != 2 || after.Result.Pin == nil || after.Result.Pin.Version != 2 {
		t.Errorf("post-commit cite not pinned to new version: version=%d pin=%+v", after.Version, after.Result.Pin)
	}
	if after.Result.Pin.SHA256 == first.Result.Pin.SHA256 {
		t.Error("post-commit digest identical — stale result served")
	}
	if stats := srv.CacheStats(); stats.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one per version)", stats.Misses)
	}
}

func TestCiteBatch(t *testing.T) {
	_, ts := paperServer(t, Options{})
	queries := []string{
		paperQuery,
		"((not a query",
		"Q(Text) :- FamilyIntro(FID, Text)",
		paperQuery, // duplicate coalesces within the batch
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Queries: queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("%d results, want 4", len(out.Results))
	}
	if out.Results[0].Error != "" || len(out.Results[0].Record) == 0 {
		t.Errorf("result 0: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Error("parse failure at position 1 not reported")
	}
	if out.Results[2].Error != "" || len(out.Results[2].Record) == 0 {
		t.Errorf("result 2 failed beside a bad neighbor: %+v", out.Results[2])
	}
	if out.Results[3].Error != "" || !out.Results[3].Record.Equal(out.Results[0].Record) {
		t.Errorf("duplicate query result diverged: %+v", out.Results[3])
	}
}

func TestCiteRequestValidation(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", `{}`, http.StatusBadRequest},
		{"both fields", `{"query":"q","queries":["q"]}`, http.StatusBadRequest},
		{"not json", `not json`, http.StatusBadRequest},
		{"unknown field", `{"qwery":"q"}`, http.StatusBadRequest},
		// The error taxonomy: an unparsable query is the client's fault
		// (cq.ErrBadQuery, 400); a well-formed query with no rewriting
		// over the registered views is semantically unprocessable (422).
		{"bad query", `{"query":"((("}`, http.StatusBadRequest},
		{"no rewriting", `{"query":"Q(X) :- Nowhere(X)"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, err := client.Post(ts.URL+"/cite", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Wrong methods.
	resp, err := client.Get(ts.URL + "/cite")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /cite: status %d", resp.StatusCode)
	}
	resp, err = client.Post(ts.URL+"/versions", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /versions: status %d", resp.StatusCode)
	}
}

func TestVersionsViewsHealthz(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()

	var versions struct {
		Epoch    int64 `json:"epoch"`
		Latest   int   `json:"latest"`
		Versions []struct {
			Version int    `json:"version"`
			Message string `json:"message"`
			Tuples  int    `json:"tuples"`
		} `json:"versions"`
	}
	getJSON(t, client, ts.URL+"/versions", &versions)
	if versions.Latest != 1 || len(versions.Versions) != 1 {
		t.Errorf("versions: %+v", versions)
	}
	if versions.Versions[0].Message != "test base" || versions.Versions[0].Tuples != 7 {
		t.Errorf("version record: %+v", versions.Versions[0])
	}

	var views struct {
		Count int        `json:"count"`
		Views []ViewInfo `json:"views"`
	}
	getJSON(t, client, ts.URL+"/views", &views)
	if views.Count != 3 || len(views.Views) != 3 {
		t.Fatalf("views: %+v", views)
	}
	byName := map[string]ViewInfo{}
	for _, v := range views.Views {
		byName[v.Name] = v
	}
	v1 := byName["V1"]
	if !v1.Parameterized || len(v1.Params) != 1 || v1.CitationQueries != 1 {
		t.Errorf("V1: %+v", v1)
	}
	if got := v1.Static[format.FieldDatabase]; len(got) != 1 {
		t.Errorf("V1 static record: %+v", v1.Static)
	}

	var health struct {
		Status  string `json:"status"`
		Version int    `json:"version"`
		Views   int    `json:"views"`
	}
	resp := getJSON(t, client, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Version != 1 || health.Views != 3 {
		t.Errorf("healthz: %d %+v", resp.StatusCode, health)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`citeserved_requests_total{endpoint="cite"} 2`,
		"citeserved_cache_hits_total 1",
		"citeserved_cache_misses_total 1",
		"citeserved_cache_entries 1",
		"citeserved_store_version 1",
		"# TYPE citeserved_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metrics content type %q", resp.Header.Get("Content-Type"))
	}
}

// TestRequestTimeout verifies a request abandoned at its deadline
// answers 504 while the detached computation still completes and fills
// the cache for the next client.
func TestRequestTimeout(t *testing.T) {
	srv, ts := paperServer(t, Options{RequestTimeout: 30 * time.Millisecond})
	inner := srv.citer
	release := make(chan struct{})
	var delayed atomic.Bool
	srv.citer = func(ctx context.Context, queries []string, v fixity.Version) ([]*core.Citation, []error) {
		if delayed.CompareAndSwap(false, true) {
			<-release // first computation outlives the request deadline
		}
		return inner(ctx, queries, v)
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	close(release)

	// The detached computation completes and caches; the retry is a hit.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, body = postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
		var out citeResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
			if out.Result.Cache == "hit" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned computation never reached the cache: %d %s", resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats := srv.CacheStats(); stats.Misses != 1 {
		t.Errorf("misses = %d, want 1 (timeout must not recompute)", stats.Misses)
	}
}

// TestAdmissionControl verifies the semaphore: with every admission slot
// occupied, a queued request answers 503 at its deadline, and admission
// resumes once a slot frees.
func TestAdmissionControl(t *testing.T) {
	srv, ts := paperServer(t, Options{MaxInFlight: 1, RequestTimeout: 50 * time.Millisecond})
	srv.sem <- struct{}{} // occupy the only slot

	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if srv.metrics.rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", srv.metrics.rejected.Load())
	}

	<-srv.sem // free the slot; admission resumes
	resp, body = postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d: %s", resp.StatusCode, body)
	}
}

// TestCiterPanicIsContained asserts an engine panic in the detached
// computation becomes a request error — waiters released, nothing
// cached, process alive — instead of crashing the server.
func TestCiterPanicIsContained(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	inner := srv.citer
	var panicked atomic.Bool
	srv.citer = func(ctx context.Context, queries []string, v fixity.Version) ([]*core.Citation, []error) {
		if panicked.CompareAndSwap(false, true) {
			panic("engine bug")
		}
		return inner(ctx, queries, v)
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("panicked computation answered 200: %s", body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Errorf("error body: %s", body)
	}
	// The failure was not cached; the retry computes and succeeds.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d %s", resp.StatusCode, body)
	}
}

// TestGracefulShutdown starts a real listener, then shuts down and
// asserts Serve returns http.ErrServerClosed and pending computations
// are awaited.
func TestGracefulShutdown(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "paper.dcs"))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Load(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	sys.Commit("base")
	srv := New(sys, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	url := "http://" + ln.Addr().String()
	resp, body := postJSON(t, http.DefaultClient, url+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown cite: %d %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// TestVersionedCite covers time travel over the wire: POST /cite?version=N
// answers the citation pinned at N, keyed in a cache partition commits
// never invalidate, while unknown or malformed versions answer 404/400.
func TestVersionedCite(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	client := ts.Client()

	// Move the head on: v2 commits new content, so head cites pin to 2.
	if err := srv.System().Database().Insert("Family",
		value.Int(13), value.String("Galanin"), value.String("C3")); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, client, ts.URL+"/commit", map[string]string{"message": "v2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: %d %s", resp.StatusCode, body)
	}

	// Time travel to version 1: pin and envelope name version 1.
	resp, body = postJSON(t, client, ts.URL+"/cite?version=1", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned cite: %d %s", resp.StatusCode, body)
	}
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 1 {
		t.Errorf("envelope version = %d, want 1", out.Version)
	}
	if out.Result.Pin == nil || out.Result.Pin.Version != 1 {
		t.Errorf("pin = %+v, want version 1", out.Result.Pin)
	}
	if out.Result.Cache != "miss" {
		t.Errorf("first versioned cite cache = %q, want miss", out.Result.Cache)
	}
	v1Text := out.Result.Text

	// The head cite pins to the latest version, under a separate cache key.
	resp, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("head cite: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 2 || out.Result.Pin == nil || out.Result.Pin.Version != 2 {
		t.Errorf("head cite version = %d pin %+v, want 2", out.Version, out.Result.Pin)
	}

	// A further commit invalidates head results but not versioned ones:
	// the next ?version=1 cite is still a cache hit with identical bytes.
	resp, body = postJSON(t, client, ts.URL+"/commit", map[string]string{"message": "v3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL+"/cite?version=1", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned cite after commit: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Cache != "hit" {
		t.Errorf("versioned cite after commit cache = %q, want hit (immutable results survive commits)", out.Result.Cache)
	}
	if out.Result.Text != v1Text {
		t.Errorf("versioned result drifted across commits:\n got %s\nwant %s", out.Result.Text, v1Text)
	}

	// Batches accept the same parameter; every member pins to it.
	resp, body = postJSON(t, client, ts.URL+"/cite?version=1",
		citeRequest{Queries: []string{paperQuery, "Q(Text) :- FamilyIntro(FID, Text)"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned batch: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Pin == nil || r.Pin.Version != 1 {
			t.Errorf("batch member %d: error %q pin %+v, want version 1", i, r.Error, r.Pin)
		}
	}

	// Error taxonomy on the version axis.
	resp, body = postJSON(t, client, ts.URL+"/cite?version=99", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown version: %d %s, want 404", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL+"/cite?version=0", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("version=0: %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL+"/cite?version=abc", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("version=abc: %d %s, want 400", resp.StatusCode, body)
	}
}

// TestSetPolicyInvalidatesVersionedCache pins the configuration half of
// the versioned-cache contract: commits never invalidate version-pinned
// results (immutable snapshots), but SetPolicy — which changes what a
// citation of even an old version contains — must orphan them.
func TestSetPolicyInvalidatesVersionedCache(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	client := ts.Client()

	_, body := postJSON(t, client, ts.URL+"/cite?version=1", citeRequest{Query: paperQuery})
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Cache != "miss" {
		t.Fatalf("first versioned cite cache = %q, want miss", out.Result.Cache)
	}

	pol := srv.System().Generator().Policy()
	srv.System().SetPolicy(pol) // same policy, but the config generation moves

	_, body = postJSON(t, client, ts.URL+"/cite?version=1", citeRequest{Query: paperQuery})
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Cache != "miss" {
		t.Errorf("versioned cite after SetPolicy cache = %q, want miss (config change must orphan versioned entries)", out.Result.Cache)
	}
}
