package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixity"
	"repro/internal/format"
	"repro/internal/spec"
	"repro/internal/storage"
	"repro/internal/value"
)

const paperQuery = "Q(FName) :- Family(FID, FName, Desc)"

// paperServer loads testdata/paper.dcs, commits an initial version, and
// wraps the system in a test server.
func paperServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "paper.dcs"))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Load(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	sys.Commit("test base")
	srv := New(sys, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, client *http.Client, url string, into any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("response not JSON: %v\n%s", err, raw)
		}
	}
	return resp
}

func getText(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestCiteSingle(t *testing.T) {
	_, ts := paperServer(t, Options{})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response: %v\n%s", err, body)
	}
	if out.Result == nil || out.Results != nil {
		t.Fatalf("single request must answer with result, not results: %s", body)
	}
	if out.Version != 1 || out.Epoch < 1 {
		t.Errorf("version=%d epoch=%d", out.Version, out.Epoch)
	}
	if got := out.Result.Record[format.FieldDatabase]; len(got) == 0 {
		t.Errorf("citation has no database field: %s", body)
	}
	if out.Result.Pin == nil || out.Result.Pin.Version != 1 || out.Result.Pin.SHA256 == "" {
		t.Errorf("missing or malformed pin: %+v", out.Result.Pin)
	}
	if out.Result.Cache != "miss" {
		t.Errorf("first request cache status %q", out.Result.Cache)
	}
	if !strings.Contains(out.Result.Text, "sha256=") {
		t.Errorf("text rendering lost the pin: %q", out.Result.Text)
	}
}

// TestCiteWireMatchesDiskRenderer decodes the record the server emits
// and compares it field-by-field against what the engine + format.JSON
// produce locally — the citation renders identically on disk and on the
// wire.
func TestCiteWireMatchesDiskRenderer(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	_, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}

	cite, err := srv.System().Cite(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Record.Equal(cite.Result.Record) {
		t.Errorf("wire record != engine record:\n%v\n%v", out.Result.Record, cite.Result.Record)
	}
	rendered, err := format.JSON(cite.Result.Record)
	if err != nil {
		t.Fatal(err)
	}
	var fromDisk format.Record
	if err := json.Unmarshal([]byte(rendered), &fromDisk); err != nil {
		t.Fatal(err)
	}
	if !out.Result.Record.Equal(fromDisk) {
		t.Errorf("wire record != format.JSON record:\n%v\n%s", out.Result.Record, rendered)
	}
	for f, vs := range fromDisk {
		ws := out.Result.Record[f]
		if len(ws) != len(vs) {
			t.Fatalf("field %s: wire has %d values, disk %d", f, len(ws), len(vs))
		}
		for i := range vs {
			if ws[i] != vs[i] {
				t.Errorf("field %s[%d]: wire %q, disk %q", f, i, ws[i], vs[i])
			}
		}
	}
}

// TestConcurrentCiteComputesOnce is the acceptance race test: many
// concurrent POST /cite for the same query at the same version must
// compute the citation exactly once — every other request is served by
// coalescing onto the in-flight computation or by the result cache.
func TestConcurrentCiteComputesOnce(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	var computations atomic.Int64
	inner := srv.citer
	srv.citer = func(ctx context.Context, queries []string, v fixity.Version) ([]*core.Citation, []error) {
		computations.Add(int64(len(queries)))
		return inner(ctx, queries, v)
	}

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var out citeResponse
			if err := json.Unmarshal(body, &out); err != nil {
				errs <- err
				return
			}
			if out.Result == nil || len(out.Result.Record) == 0 {
				errs <- fmt.Errorf("empty citation: %s", body)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := computations.Load(); got != 1 {
		t.Errorf("citation computed %d times for %d concurrent clients, want exactly 1", got, clients)
	}
	stats := srv.CacheStats()
	if stats.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", stats.Misses)
	}
	if stats.Hits+stats.Coalesced != clients-1 {
		t.Errorf("hits(%d)+coalesced(%d) = %d, want %d",
			stats.Hits, stats.Coalesced, stats.Hits+stats.Coalesced, clients-1)
	}
}

// TestCommitInvalidatesCache is the second acceptance half: POST /commit
// bumps the version, and the next cite recomputes against the new state
// instead of serving the stale cached result.
func TestCommitInvalidatesCache(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	client := ts.Client()

	_, body := postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	var first citeResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	// Served from cache on repeat.
	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	var repeat citeResponse
	if err := json.Unmarshal(body, &repeat); err != nil {
		t.Fatal(err)
	}
	if repeat.Result.Cache != "hit" {
		t.Errorf("repeat request cache status %q, want hit", repeat.Result.Cache)
	}

	// Mutate the head so the new version's citation differs, then commit.
	db := srv.System().Database()
	if err := db.Insert("Family", value.Int(13), value.String("Adrenomedullin"), value.String("C3")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Committee", value.Int(13), value.String("Dave")); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, client, ts.URL+"/commit", commitRequest{Message: "add family 13"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit status %d: %s", resp.StatusCode, body)
	}
	var commitOut struct {
		Epoch   int64 `json:"epoch"`
		Version int   `json:"version"`
	}
	if err := json.Unmarshal(body, &commitOut); err != nil {
		t.Fatal(err)
	}
	if commitOut.Version != 2 || commitOut.Epoch <= first.Epoch {
		t.Errorf("commit version=%d epoch=%d (was %d)", commitOut.Version, commitOut.Epoch, first.Epoch)
	}

	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	var after citeResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Result.Cache != "miss" {
		t.Errorf("post-commit request cache status %q, want miss (cache invalidated)", after.Result.Cache)
	}
	if after.Version != 2 || after.Result.Pin == nil || after.Result.Pin.Version != 2 {
		t.Errorf("post-commit cite not pinned to new version: version=%d pin=%+v", after.Version, after.Result.Pin)
	}
	if after.Result.Pin.SHA256 == first.Result.Pin.SHA256 {
		t.Error("post-commit digest identical — stale result served")
	}
	if stats := srv.CacheStats(); stats.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one per version)", stats.Misses)
	}
}

func TestCiteBatch(t *testing.T) {
	_, ts := paperServer(t, Options{})
	queries := []string{
		paperQuery,
		"((not a query",
		"Q(Text) :- FamilyIntro(FID, Text)",
		paperQuery, // duplicate coalesces within the batch
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Queries: queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("%d results, want 4", len(out.Results))
	}
	if out.Results[0].Error != "" || len(out.Results[0].Record) == 0 {
		t.Errorf("result 0: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Error("parse failure at position 1 not reported")
	}
	if out.Results[2].Error != "" || len(out.Results[2].Record) == 0 {
		t.Errorf("result 2 failed beside a bad neighbor: %+v", out.Results[2])
	}
	if out.Results[3].Error != "" || !out.Results[3].Record.Equal(out.Results[0].Record) {
		t.Errorf("duplicate query result diverged: %+v", out.Results[3])
	}
}

func TestCiteRequestValidation(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", `{}`, http.StatusBadRequest},
		{"both fields", `{"query":"q","queries":["q"]}`, http.StatusBadRequest},
		{"not json", `not json`, http.StatusBadRequest},
		{"unknown field", `{"qwery":"q"}`, http.StatusBadRequest},
		// The error taxonomy: an unparsable query is the client's fault
		// (cq.ErrBadQuery, 400); a well-formed query with no rewriting
		// over the registered views is semantically unprocessable (422).
		{"bad query", `{"query":"((("}`, http.StatusBadRequest},
		{"no rewriting", `{"query":"Q(X) :- Nowhere(X)"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, err := client.Post(ts.URL+"/cite", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Wrong methods.
	resp, err := client.Get(ts.URL + "/cite")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /cite: status %d", resp.StatusCode)
	}
	resp, err = client.Post(ts.URL+"/versions", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /versions: status %d", resp.StatusCode)
	}
}

func TestVersionsViewsHealthz(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()

	var versions struct {
		Epoch    int64 `json:"epoch"`
		Latest   int   `json:"latest"`
		Versions []struct {
			Version int    `json:"version"`
			Message string `json:"message"`
			Tuples  int    `json:"tuples"`
		} `json:"versions"`
	}
	getJSON(t, client, ts.URL+"/versions", &versions)
	if versions.Latest != 1 || len(versions.Versions) != 1 {
		t.Errorf("versions: %+v", versions)
	}
	if versions.Versions[0].Message != "test base" || versions.Versions[0].Tuples != 7 {
		t.Errorf("version record: %+v", versions.Versions[0])
	}

	var views struct {
		Count int        `json:"count"`
		Views []ViewInfo `json:"views"`
	}
	getJSON(t, client, ts.URL+"/views", &views)
	if views.Count != 3 || len(views.Views) != 3 {
		t.Fatalf("views: %+v", views)
	}
	byName := map[string]ViewInfo{}
	for _, v := range views.Views {
		byName[v.Name] = v
	}
	v1 := byName["V1"]
	if !v1.Parameterized || len(v1.Params) != 1 || v1.CitationQueries != 1 {
		t.Errorf("V1: %+v", v1)
	}
	if got := v1.Static[format.FieldDatabase]; len(got) != 1 {
		t.Errorf("V1 static record: %+v", v1.Static)
	}

	var health struct {
		Status  string `json:"status"`
		Version int    `json:"version"`
		Views   int    `json:"views"`
	}
	resp := getJSON(t, client, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Version != 1 || health.Views != 3 {
		t.Errorf("healthz: %d %+v", resp.StatusCode, health)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`citeserved_requests_total{endpoint="cite"} 2`,
		"citeserved_cache_hits_total 1",
		"citeserved_cache_misses_total 1",
		"citeserved_cache_entries 1",
		"citeserved_store_version 1",
		"# TYPE citeserved_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metrics content type %q", resp.Header.Get("Content-Type"))
	}
}

// TestRequestTimeout verifies a request abandoned at its deadline
// answers 504 while the detached computation still completes and fills
// the cache for the next client.
func TestRequestTimeout(t *testing.T) {
	srv, ts := paperServer(t, Options{RequestTimeout: 30 * time.Millisecond})
	inner := srv.citer
	release := make(chan struct{})
	var delayed atomic.Bool
	srv.citer = func(ctx context.Context, queries []string, v fixity.Version) ([]*core.Citation, []error) {
		if delayed.CompareAndSwap(false, true) {
			<-release // first computation outlives the request deadline
		}
		return inner(ctx, queries, v)
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	close(release)

	// The detached computation completes and caches; the retry is a hit.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, body = postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
		var out citeResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
			if out.Result.Cache == "hit" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned computation never reached the cache: %d %s", resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats := srv.CacheStats(); stats.Misses != 1 {
		t.Errorf("misses = %d, want 1 (timeout must not recompute)", stats.Misses)
	}
}

// TestAdmissionControl verifies the semaphore: with every admission slot
// occupied, a queued request answers 503 at its deadline, and admission
// resumes once a slot frees.
func TestAdmissionControl(t *testing.T) {
	srv, ts := paperServer(t, Options{MaxInFlight: 1, RequestTimeout: 50 * time.Millisecond})
	srv.sem <- struct{}{} // occupy the only slot

	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if srv.metrics.rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", srv.metrics.rejected.Load())
	}

	<-srv.sem // free the slot; admission resumes
	resp, body = postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d: %s", resp.StatusCode, body)
	}
}

// TestCiterPanicIsContained asserts an engine panic in the detached
// computation becomes a request error — waiters released, nothing
// cached, process alive — instead of crashing the server.
func TestCiterPanicIsContained(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	inner := srv.citer
	var panicked atomic.Bool
	srv.citer = func(ctx context.Context, queries []string, v fixity.Version) ([]*core.Citation, []error) {
		if panicked.CompareAndSwap(false, true) {
			panic("engine bug")
		}
		return inner(ctx, queries, v)
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("panicked computation answered 200: %s", body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Errorf("error body: %s", body)
	}
	// The failure was not cached; the retry computes and succeeds.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d %s", resp.StatusCode, body)
	}
}

// TestGracefulShutdown starts a real listener, then shuts down and
// asserts Serve returns http.ErrServerClosed and pending computations
// are awaited.
func TestGracefulShutdown(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "paper.dcs"))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Load(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	sys.Commit("base")
	srv := New(sys, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	url := "http://" + ln.Addr().String()
	resp, body := postJSON(t, http.DefaultClient, url+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown cite: %d %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// TestVersionedCite covers time travel over the wire: POST /cite?version=N
// answers the citation pinned at N, keyed in a cache partition commits
// never invalidate, while unknown or malformed versions answer 404/400.
func TestVersionedCite(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	client := ts.Client()

	// Move the head on: v2 commits new content, so head cites pin to 2.
	if err := srv.System().Database().Insert("Family",
		value.Int(13), value.String("Galanin"), value.String("C3")); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, client, ts.URL+"/commit", map[string]string{"message": "v2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: %d %s", resp.StatusCode, body)
	}

	// Time travel to version 1: pin and envelope name version 1.
	resp, body = postJSON(t, client, ts.URL+"/cite?version=1", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned cite: %d %s", resp.StatusCode, body)
	}
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 1 {
		t.Errorf("envelope version = %d, want 1", out.Version)
	}
	if out.Result.Pin == nil || out.Result.Pin.Version != 1 {
		t.Errorf("pin = %+v, want version 1", out.Result.Pin)
	}
	if out.Result.Cache != "miss" {
		t.Errorf("first versioned cite cache = %q, want miss", out.Result.Cache)
	}
	v1Text := out.Result.Text

	// The head cite pins to the latest version, under a separate cache key.
	resp, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("head cite: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 2 || out.Result.Pin == nil || out.Result.Pin.Version != 2 {
		t.Errorf("head cite version = %d pin %+v, want 2", out.Version, out.Result.Pin)
	}

	// A further commit invalidates head results but not versioned ones:
	// the next ?version=1 cite is still a cache hit with identical bytes.
	resp, body = postJSON(t, client, ts.URL+"/commit", map[string]string{"message": "v3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL+"/cite?version=1", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned cite after commit: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Cache != "hit" {
		t.Errorf("versioned cite after commit cache = %q, want hit (immutable results survive commits)", out.Result.Cache)
	}
	if out.Result.Text != v1Text {
		t.Errorf("versioned result drifted across commits:\n got %s\nwant %s", out.Result.Text, v1Text)
	}

	// Batches accept the same parameter; every member pins to it.
	resp, body = postJSON(t, client, ts.URL+"/cite?version=1",
		citeRequest{Queries: []string{paperQuery, "Q(Text) :- FamilyIntro(FID, Text)"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned batch: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Pin == nil || r.Pin.Version != 1 {
			t.Errorf("batch member %d: error %q pin %+v, want version 1", i, r.Error, r.Pin)
		}
	}

	// Error taxonomy on the version axis.
	resp, body = postJSON(t, client, ts.URL+"/cite?version=99", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown version: %d %s, want 404", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL+"/cite?version=0", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("version=0: %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL+"/cite?version=abc", citeRequest{Query: paperQuery})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("version=abc: %d %s, want 400", resp.StatusCode, body)
	}
}

// TestSetPolicyInvalidatesVersionedCache pins the configuration half of
// the versioned-cache contract: commits never invalidate version-pinned
// results (immutable snapshots), but SetPolicy — which changes what a
// citation of even an old version contains — must orphan them.
func TestSetPolicyInvalidatesVersionedCache(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	client := ts.Client()

	_, body := postJSON(t, client, ts.URL+"/cite?version=1", citeRequest{Query: paperQuery})
	var out citeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Cache != "miss" {
		t.Fatalf("first versioned cite cache = %q, want miss", out.Result.Cache)
	}

	pol := srv.System().Generator().Policy()
	srv.System().SetPolicy(pol) // same policy, but the config generation moves

	_, body = postJSON(t, client, ts.URL+"/cite?version=1", citeRequest{Query: paperQuery})
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Cache != "miss" {
		t.Errorf("versioned cite after SetPolicy cache = %q, want miss (config change must orphan versioned entries)", out.Result.Cache)
	}
}

func TestIngestEndpoint(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()

	// A cite before the ingest, to prove the cache turns over.
	resp, _ := postJSON(t, client, ts.URL+"/cite", map[string]any{"query": paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-ingest cite: %d", resp.StatusCode)
	}

	var ing struct {
		Epoch    int64 `json:"epoch"`
		Inserted int   `json:"inserted"`
		Deleted  int   `json:"deleted"`
		Batches  []struct {
			Relation string `json:"relation"`
			Inserted int    `json:"inserted"`
			Deleted  int    `json:"deleted"`
		} `json:"batches"`
	}
	resp, body := postJSON(t, client, ts.URL+"/ingest", map[string]any{
		"batches": []map[string]any{
			{"relation": "Family", "insert": [][]any{{77, "Amylin", "A1"}, {78, "Ghrelin", "G1"}}},
			{"relation": "Family", "delete": [][]any{{78, "Ghrelin", "G1"}, {999, "None", "X"}}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatalf("ingest response: %v\n%s", err, body)
	}
	if ing.Inserted != 2 || ing.Deleted != 1 || len(ing.Batches) != 2 {
		t.Fatalf("ingest counts: %+v", ing)
	}

	// The head citation reflects the ingested tuple (epoch moved, cache
	// did not serve the stale result).
	var cite struct {
		Result struct {
			Record map[string][]string `json:"record"`
			Cache  string              `json:"cache"`
		} `json:"result"`
	}
	resp, body = postJSON(t, client, ts.URL+"/cite", map[string]any{"query": paperQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ingest cite: %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cite); err != nil {
		t.Fatal(err)
	}
	if cite.Result.Cache != "miss" {
		t.Fatalf("post-ingest cite served %q, want a fresh computation", cite.Result.Cache)
	}

	// Error taxonomy: unknown relation 422, malformed tuples 400, both
	// shapes at once 400, empty 400 — and nothing is applied.
	for _, tc := range []struct {
		name string
		body map[string]any
		want int
	}{
		{"unknown relation", map[string]any{"relation": "Nope", "insert": [][]any{{1}}}, http.StatusUnprocessableEntity},
		{"bad arity", map[string]any{"relation": "Family", "insert": [][]any{{1, "x"}}}, http.StatusBadRequest},
		{"bad kind", map[string]any{"relation": "Family", "insert": [][]any{{"str", "x", "y"}}}, http.StatusBadRequest},
		{"both shapes", map[string]any{"relation": "Family", "insert": [][]any{{1, "a", "b"}},
			"batches": []map[string]any{{"relation": "Family"}}}, http.StatusBadRequest},
		{"empty", map[string]any{}, http.StatusBadRequest},
		{"empty batch", map[string]any{"batches": []map[string]any{{"relation": "Family"}}}, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, client, ts.URL+"/ingest", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}

func TestRelationsEndpoint(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	client := ts.Client()
	type relResp struct {
		Epoch     int64 `json:"epoch"`
		Version   int   `json:"version"`
		Relations []struct {
			Name       string `json:"name"`
			Arity      int    `json:"arity"`
			Tuples     int    `json:"tuples"`
			Attributes []struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
				Key  bool   `json:"key"`
			} `json:"attributes"`
		} `json:"relations"`
	}
	var head relResp
	if resp := getJSON(t, client, ts.URL+"/relations", &head); resp.StatusCode != http.StatusOK {
		t.Fatalf("relations: %d", resp.StatusCode)
	}
	if head.Version != 1 || len(head.Relations) == 0 {
		t.Fatalf("relations head: %+v", head)
	}
	famTuples := -1
	for _, r := range head.Relations {
		if r.Name == "Family" {
			famTuples = r.Tuples
			if r.Arity != 3 || len(r.Attributes) != 3 || r.Attributes[0].Kind != "int" {
				t.Fatalf("Family shape: %+v", r)
			}
		}
	}
	if famTuples < 1 {
		t.Fatalf("Family missing or empty: %+v", head)
	}

	// Mutate + commit, then ask for the old version's cardinalities.
	if _, err := srv.System().Insert("Family", []storage.Tuple{
		{value.Int(555), value.String("New"), value.String("N")},
	}); err != nil {
		t.Fatal(err)
	}
	srv.System().Commit("v2")
	var v1, v2 relResp
	getJSON(t, client, ts.URL+"/relations?version=1", &v1)
	getJSON(t, client, ts.URL+"/relations", &v2)
	famAt := func(r relResp) int {
		for _, rel := range r.Relations {
			if rel.Name == "Family" {
				return rel.Tuples
			}
		}
		return -1
	}
	if famAt(v1) != famTuples {
		t.Fatalf("version 1 cardinality drifted: %d vs %d", famAt(v1), famTuples)
	}
	if famAt(v2) != famTuples+1 {
		t.Fatalf("head cardinality: %d, want %d", famAt(v2), famTuples+1)
	}
	if resp := getJSON(t, client, ts.URL+"/relations?version=99", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown version: %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, client, ts.URL+"/relations?version=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus version: %d, want 400", resp.StatusCode)
	}
}

// durablePaperServer builds a journaling system from the paper fixture.
func durablePaperServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "paper.dcs"))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Load(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableDurability(dir, core.DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	sys.Commit("load")
	srv := New(sys, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestServerCrashRecoveryByteIdentical is the HTTP half of the kill -9
// durability proof: ingest and commit three versions over the wire, pin
// a citation at version 2, crash (abandon the server without checkpoint
// or clean close), restart on the same directory, and require /versions
// to serve the identical history and the pinned ?version=2 citation to
// be byte-identical.
func TestServerCrashRecoveryByteIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	srv1, ts := durablePaperServer(t, dir)
	client := ts.Client()

	for i, ins := range [][]any{{101, "Amylin", "A"}, {102, "Ghrelin", "G"}, {103, "Motilin", "M"}} {
		resp, body := postJSON(t, client, ts.URL+"/ingest", map[string]any{
			"relation": "Family", "insert": [][]any{ins},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d: %s", i, resp.StatusCode, body)
		}
		resp, body = postJSON(t, client, ts.URL+"/commit", map[string]any{"message": fmt.Sprintf("wire commit %d", i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("commit %d: %d: %s", i, resp.StatusCode, body)
		}
	}

	// Strip the envelope's epoch (a process-local token) but keep the
	// whole result object, pin and digest included.
	pinned := func(u string) json.RawMessage {
		resp, body := postJSON(t, client, u+"/cite?version=2", map[string]any{"query": paperQuery})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pinned cite: %d: %s", resp.StatusCode, body)
		}
		var env struct {
			Version int             `json:"version"`
			Result  json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.Version != 2 {
			t.Fatalf("pinned cite answered version %d", env.Version)
		}
		return env.Result
	}
	versions := func(u string) string {
		var env struct {
			Latest   int               `json:"latest"`
			Versions []json.RawMessage `json:"versions"`
		}
		getJSON(t, client, u+"/versions", &env)
		raw, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	origResult := pinned(ts.URL)
	origVersions := versions(ts.URL)

	// Crash: the httptest server closes and the System is abandoned
	// without a checkpoint. Dropping the log releases the writer flock
	// so this process can reopen the directory; appends are unbuffered,
	// so this loses exactly what a kill -9 would (the CI smoke job does
	// the real cross-process kill -9).
	ts.Close()
	if err := srv1.System().CloseDurability(); err != nil {
		t.Fatal(err)
	}

	re, err := core.Open(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(re, Options{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client = ts2.Client()

	if got := versions(ts2.URL); got != origVersions {
		t.Fatalf("recovered /versions differs:\n orig: %s\n got: %s", origVersions, got)
	}
	if got := pinned(ts2.URL); string(got) != string(origResult) {
		t.Fatalf("recovered pinned citation differs:\n orig: %s\n got: %s", origResult, got)
	}

	var hz struct {
		Durable          bool `json:"durable"`
		RecoveredVersion int  `json:"recovered_version"`
		Version          int  `json:"version"`
	}
	getJSON(t, client, ts2.URL+"/healthz", &hz)
	if !hz.Durable || hz.RecoveredVersion != 4 || hz.Version != 4 {
		t.Fatalf("healthz after recovery: %+v", hz)
	}
	metrics := getText(t, client, ts2.URL+"/metrics")
	for _, want := range []string{
		"citeserved_wal_segments", "citeserved_wal_bytes_since_checkpoint",
		"citeserved_recovery_seconds", "citeserved_recovered_version 4",
		`citeserved_wal_fsync_mode{mode="on-commit"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

const introQuery = "Q(Text) :- FamilyIntro(FID, Text)"

// TestCommitKeepsUntouchedEntries pins the delta invalidation rule on
// /commit: a commit touching only FamilyIntro evicts the cached
// FamilyIntro citation but keeps the Family/Committee one warm — the
// repeat cite is a hit, not a recomputation.
func TestCommitKeepsUntouchedEntries(t *testing.T) {
	srv, ts := paperServer(t, Options{})
	client := ts.Client()

	var fam, intro citeResponse
	_, body := postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	if err := json.Unmarshal(body, &fam); err != nil {
		t.Fatal(err)
	}
	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: introQuery})
	if err := json.Unmarshal(body, &intro); err != nil {
		t.Fatal(err)
	}
	// The read-sets the cache scopes eviction by travel in the response.
	if got := fam.Result.Reads; len(got) != 2 || got[0] != "Committee" || got[1] != "Family" {
		t.Fatalf("family reads = %v, want [Committee Family]", got)
	}
	if got := intro.Result.Reads; len(got) != 1 || got[0] != "FamilyIntro" {
		t.Fatalf("intro reads = %v, want [FamilyIntro]", got)
	}

	db := srv.System().Database()
	if err := db.Insert("FamilyIntro", value.Int(13), value.String("3rd")); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, client, ts.URL+"/commit", commitRequest{Message: "intro only"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: %d: %s", resp.StatusCode, body)
	}

	// Untouched relations: served from the surviving entry.
	var famAfter citeResponse
	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	if err := json.Unmarshal(body, &famAfter); err != nil {
		t.Fatal(err)
	}
	if famAfter.Result.Cache != "hit" {
		t.Errorf("family cite after intro-only commit: cache %q, want hit", famAfter.Result.Cache)
	}
	if famAfter.Result.Text != fam.Result.Text {
		t.Errorf("surviving entry changed text:\n got %s\nwant %s", famAfter.Result.Text, fam.Result.Text)
	}
	// Touched relation: recomputed against the new data.
	var introAfter citeResponse
	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: introQuery})
	if err := json.Unmarshal(body, &introAfter); err != nil {
		t.Fatal(err)
	}
	if introAfter.Result.Cache != "miss" {
		t.Errorf("intro cite after intro commit: cache %q, want miss", introAfter.Result.Cache)
	}
	if introAfter.Result.Pin.SHA256 == intro.Result.Pin.SHA256 {
		t.Error("intro digest unchanged after new tuple — stale result")
	}

	stats := srv.CacheStats()
	if stats.Kept < 1 {
		t.Errorf("kept = %d, want >= 1 (the family entry)", stats.Kept)
	}
	if stats.Invalidated < 1 {
		t.Errorf("invalidated = %d, want >= 1 (the intro entry)", stats.Invalidated)
	}
	// The counters surface on /metrics for the CI smoke to assert on.
	metrics := getText(t, client, ts.URL+"/metrics")
	if !strings.Contains(metrics, "citeserved_result_cache_kept_total") ||
		!strings.Contains(metrics, "citeserved_result_cache_evicted_total") ||
		!strings.Contains(metrics, "citeserved_plan_cache_kept_total") {
		t.Error("delta-invalidation counters missing from /metrics")
	}
}

// TestIngestScopedPurge pins the delta rule on /ingest: ingesting into
// Family evicts only Family-reading entries, and a batch that applies no
// changes (deleting an absent tuple) evicts nothing at all.
func TestIngestScopedPurge(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()

	for _, q := range []string{paperQuery, introQuery} {
		if resp, body := postJSON(t, client, ts.URL+"/cite", citeRequest{Query: q}); resp.StatusCode != http.StatusOK {
			t.Fatalf("prime %q: %d: %s", q, resp.StatusCode, body)
		}
	}

	resp, body := postJSON(t, client, ts.URL+"/ingest", map[string]any{
		"relation": "Family", "insert": [][]any{{77, "Amylin", "A1"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}

	var intro, fam citeResponse
	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: introQuery})
	if err := json.Unmarshal(body, &intro); err != nil {
		t.Fatal(err)
	}
	if intro.Result.Cache != "hit" {
		t.Errorf("intro cite after Family ingest: cache %q, want hit (scoped purge)", intro.Result.Cache)
	}
	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	if err := json.Unmarshal(body, &fam); err != nil {
		t.Fatal(err)
	}
	if fam.Result.Cache != "miss" {
		t.Errorf("family cite after Family ingest: cache %q, want miss", fam.Result.Cache)
	}

	// A no-op delta: deleting an absent tuple applies nothing, so even
	// the Family entry just recomputed stays warm.
	resp, body = postJSON(t, client, ts.URL+"/ingest", map[string]any{
		"relation": "Family", "delete": [][]any{{999, "None", "X"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-op ingest: %d: %s", resp.StatusCode, body)
	}
	_, body = postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	if err := json.Unmarshal(body, &fam); err != nil {
		t.Fatal(err)
	}
	if fam.Result.Cache != "hit" {
		t.Errorf("family cite after no-op ingest: cache %q, want hit", fam.Result.Cache)
	}
}
