// Package server is the network serving layer over core.System — the
// paper's framing of citation generation as a service a repository runs
// against its live, evolving database (§1: citations "generated
// on-the-fly", §3: serving many users over shared views). It exposes the
// engine as HTTP/JSON endpoints behind a dependency-validated LRU result
// cache with request coalescing: a hot query is computed exactly once no
// matter how many clients demand it concurrently, and a commit
// invalidates only the cached results whose relation read-set
// (CiteResult.Reads) intersects the relations the commit actually
// touched — everything else stays warm across writes (DESIGN.md §3, §5).
// DefineView/SetPolicy change citation semantics and flush everything by
// bumping the configuration generation the cache keys on.
//
// Endpoints:
//
//	POST /cite      {"query": "..."} or {"queries": ["...", ...]}
//	                ?version=N cites against committed snapshot N
//	                (time travel; 404 on unknown versions)
//	POST /ingest    {"relation": "R", "insert": [[...]], "delete": [[...]]}
//	                or {"batches": [...]} — journaled head mutations
//	POST /commit    {"message": "..."}
//	GET  /versions  commit history
//	GET  /relations relation names, arities, cardinalities (?version=N)
//	GET  /views     registered citation views
//	GET  /healthz   liveness + basic shape + recovered_version
//	GET  /metrics   Prometheus text format counters + durability gauges
//
// Errors are classified by the engine's typed sentinels: a query that
// does not parse answers 400 (cq.ErrBadQuery), an unknown version 404
// (fixity.ErrUnknownVersion), a deadline 504, an engine panic 500, and
// semantic failures — no rewriting, unknown relation — 422.
//
// Responses embed format.Record's canonical JSON encoding, so a citation
// rendered on the wire is byte-compatible with format.JSON output.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/citation"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fixity"
	"repro/internal/format"
	"repro/internal/qstats"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/value"
)

// Defaults for Options zero values.
const (
	defaultCacheSize      = 1024
	defaultRequestTimeout = 30 * time.Second
	defaultBodyLimit      = 1 << 20 // 1 MiB request bodies
	defaultTraceRing      = 64
)

// Options configures a Server. The zero value serves with sensible
// defaults.
type Options struct {
	// CacheSize bounds the result cache (entries). 0 means 1024.
	CacheSize int
	// RequestTimeout bounds the handling of one request, queueing and
	// computation included. 0 means 30s; negative disables the deadline.
	RequestTimeout time.Duration
	// MaxInFlight is the admission-control semaphore width for /cite: at
	// most this many cite requests are admitted concurrently, the rest
	// queue until a slot frees or their deadline expires (503). A slot is
	// held until both the request and any computation it spawned finish,
	// so engine work stays bounded even when clients time out mid-compute.
	// 0 means 4×GOMAXPROCS; negative disables admission control.
	MaxInFlight int
	// ComputeTimeout bounds one detached cache-fill computation. It is
	// deliberately longer than RequestTimeout: a computation that barely
	// outlives its client should still finish and fill the cache (the
	// next request is a hit), while a runaway enumeration is cancelled
	// cooperatively through the engine instead of burning a worker
	// forever. 0 means 4×RequestTimeout; negative disables the bound.
	ComputeTimeout time.Duration
	// TraceSample is the fraction of /cite requests that carry a full
	// span trace (the endpoint latency histograms are always on). 0
	// means 1.0 — trace everything; negative disables span tracing. An
	// un-sampled request pays one nil context lookup per pipeline stage.
	TraceSample float64
	// TraceEcho enables the ?trace=1 query parameter on /cite: a traced
	// request echoes its span tree inside the response envelope. Opt-in
	// because it exposes engine internals (view names, cache decisions)
	// to any client that asks.
	TraceEcho bool
	// TraceRing bounds the in-memory ring of recent traces served on
	// GET /debug/traces. 0 means 64 entries; negative disables retention
	// (the endpoint then answers 404).
	TraceRing int
	// SlowQuery is the latency threshold at or above which a completed
	// traced /cite request is written to the slow-query log as one JSON
	// line carrying its full span tree. 0 disables slow-query logging.
	SlowQuery time.Duration
	// SlowQueryLog receives the slow-query lines. nil means os.Stderr.
	SlowQueryLog io.Writer
	// QueryStats is the width (tracked fingerprints) of the per-query
	// statistics sketch fed by sampled traces and served on GET
	// /debug/querystats. 0 means qstats.DefaultK (256); negative
	// disables the store (the endpoint then answers 404).
	QueryStats int
}

// Server serves a core.System over HTTP. Create with New, mount via
// Handler (any mux/middleware stack) or run standalone with
// ListenAndServe/Serve + Shutdown.
type Server struct {
	sys     *core.System
	opts    Options
	cache   *resultCache
	metrics *serverMetrics
	mux     *http.ServeMux
	httpSrv *http.Server
	sem     chan struct{}     // admission control; nil = unlimited
	ring    *trace.Ring       // recent traces for /debug/traces; nil = disabled
	slowLog *trace.SlowLogger // nil = slow-query logging disabled
	qstats  *qstats.Store     // per-fingerprint statistics; nil = disabled

	// citer computes a batch of citations with per-query errors, against
	// the head when version is 0 or the committed snapshot otherwise. It
	// defaults to sys.CiteEachContext (+ AtVersion); tests substitute
	// instrumented or slow implementations.
	citer func(ctx context.Context, queries []string, version fixity.Version) ([]*core.Citation, []error)

	// computeWG tracks detached cache-fill computations so Shutdown can
	// wait for them after the HTTP listener drains.
	computeWG sync.WaitGroup
}

// New builds a server over the system. The system should already have its
// views defined and (typically) an initial Commit so citations carry
// fixity pins.
func New(sys *core.System, opts Options) *Server {
	if opts.CacheSize == 0 {
		opts.CacheSize = defaultCacheSize
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = defaultRequestTimeout
	}
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if opts.ComputeTimeout == 0 && opts.RequestTimeout > 0 {
		opts.ComputeTimeout = 4 * opts.RequestTimeout
	}
	if opts.TraceSample == 0 {
		opts.TraceSample = 1.0
	}
	if opts.TraceRing == 0 {
		opts.TraceRing = defaultTraceRing
	}
	s := &Server{
		sys:     sys,
		opts:    opts,
		cache:   newResultCache(opts.CacheSize),
		metrics: newServerMetrics([]string{"cite", "ingest", "commit", "versions", "relations", "views", "healthz", "metrics"}),
		mux:     http.NewServeMux(),
	}
	if opts.TraceRing > 0 {
		s.ring = trace.NewRing(opts.TraceRing)
	}
	if opts.SlowQuery > 0 {
		w := opts.SlowQueryLog
		if w == nil {
			w = os.Stderr
		}
		s.slowLog = trace.NewSlowLogger(w)
	}
	if opts.QueryStats >= 0 {
		s.qstats = qstats.NewStore(opts.QueryStats)
	}
	s.citer = func(ctx context.Context, queries []string, version fixity.Version) ([]*core.Citation, []error) {
		if version > 0 {
			return sys.CiteEachContext(ctx, queries, core.AtVersion(version))
		}
		return sys.CiteEachContext(ctx, queries)
	}
	if opts.MaxInFlight > 0 {
		s.sem = make(chan struct{}, opts.MaxInFlight)
	}
	s.mux.HandleFunc("/cite", s.metrics.instrument("cite", s.methodOnly(http.MethodPost, s.handleCite)))
	s.mux.HandleFunc("/ingest", s.metrics.instrument("ingest", s.methodOnly(http.MethodPost, s.handleIngest)))
	s.mux.HandleFunc("/commit", s.metrics.instrument("commit", s.methodOnly(http.MethodPost, s.handleCommit)))
	s.mux.HandleFunc("/versions", s.metrics.instrument("versions", s.methodOnly(http.MethodGet, s.handleVersions)))
	s.mux.HandleFunc("/relations", s.metrics.instrument("relations", s.methodOnly(http.MethodGet, s.handleRelations)))
	s.mux.HandleFunc("/views", s.metrics.instrument("views", s.methodOnly(http.MethodGet, s.handleViews)))
	s.mux.HandleFunc("/healthz", s.metrics.instrument("healthz", s.methodOnly(http.MethodGet, s.handleHealthz)))
	s.mux.HandleFunc("/metrics", s.metrics.instrument("metrics", s.methodOnly(http.MethodGet, s.handleMetrics)))
	s.registerDebug()
	s.httpSrv = &http.Server{Handler: s.mux}
	return s
}

// System returns the served system (for embedders).
func (s *Server) System() *core.System { return s.sys }

// Handler returns the server's HTTP handler for mounting under an
// external mux or middleware stack.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener until Shutdown or error. Like
// net/http, it returns http.ErrServerClosed after a clean Shutdown.
func (s *Server) Serve(ln net.Listener) error { return s.httpSrv.Serve(ln) }

// Shutdown gracefully stops the server: the listener closes, in-flight
// requests drain, and detached cache-fill computations are awaited (or
// abandoned when ctx expires; they only populate the cache, so
// abandoning them loses no client response).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	done := make(chan struct{})
	go func() {
		s.computeWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// InvalidateCache drops every cached citation result. Epoch keying makes
// this unnecessary for correctness (stale keys are never looked up); it
// exists to release memory promptly and for benchmarks that need a cold
// cache.
func (s *Server) InvalidateCache() { s.cache.purge() }

// CacheStats is a point-in-time snapshot of the result-cache counters.
// Misses count engine computations: under coalescing, N concurrent
// requests for the same query at the same version add exactly 1.
// Evictions counts LRU capacity evictions; Kept and Invalidated account
// delta invalidation — per commit/ingest, every head entry is counted
// once as kept (read-set disjoint from the touched relations) or
// invalidated (evicted because it read a touched relation).
type CacheStats struct {
	Hits, Misses, Coalesced, Evictions, Entries int64
	Kept, Invalidated                           int64
}

// QueryStats returns the per-query statistics store, or nil when
// Options.QueryStats disabled it.
func (s *Server) QueryStats() *qstats.Store { return s.qstats }

// CacheStats snapshots the result-cache counters.
func (s *Server) CacheStats() CacheStats {
	return CacheStats{
		Hits:        s.cache.hits.Load(),
		Misses:      s.cache.misses.Load(),
		Coalesced:   s.cache.coalesced.Load(),
		Evictions:   s.cache.evictions.Load(),
		Entries:     int64(s.cache.len()),
		Kept:        s.cache.kept.Load(),
		Invalidated: s.cache.invalidated.Load(),
	}
}

// Pin is the wire form of a fixity pin (fixity.PinnedCitation).
type Pin struct {
	Query     string    `json:"query"`
	Version   int       `json:"version"`
	Timestamp time.Time `json:"timestamp"`
	SHA256    string    `json:"sha256"`
	Tuples    int       `json:"tuples"`
}

// CiteResult is the wire form of one citation: the canonical record
// (format.Record's JSON encoding — identical to format.JSON output), a
// human-readable text rendering, and the fixity pin when the store has
// committed versions. Exactly one of Record/Error is meaningful: a
// failed query reports Error and nothing else.
type CiteResult struct {
	Query  string        `json:"query"`
	Record format.Record `json:"record,omitempty"`
	Text   string        `json:"text,omitempty"`
	Pin    *Pin          `json:"pin,omitempty"`
	Cache  string        `json:"cache,omitempty"` // "hit", "miss" or "coalesced"
	// Reads is the citation's relation read-set: the base relations the
	// engine transitively read to produce it (citation.Result.Reads).
	// Clients see which deltas can invalidate the citation; the server's
	// result cache keys delta invalidation on it.
	Reads []string `json:"reads,omitempty"`
	Error string   `json:"error,omitempty"`
}

// NewCiteResult converts an engine citation into its wire form. It is
// exported for CLI tools (citegen -json) so the file and wire renderings
// share one envelope.
func NewCiteResult(query string, c *core.Citation) CiteResult {
	out := CiteResult{
		Query:  query,
		Record: c.Result.Record,
		Text:   c.Text(),
		Reads:  c.Result.Reads,
	}
	if c.Pin != nil {
		out.Pin = &Pin{
			Query:     c.Pin.QueryText,
			Version:   int(c.Pin.Version),
			Timestamp: c.Pin.Timestamp,
			SHA256:    c.Pin.Digest,
			Tuples:    c.Pin.Tuples,
		}
	}
	return out
}

// citeRequest is the POST /cite body: exactly one of Query/Queries.
type citeRequest struct {
	Query   string   `json:"query,omitempty"`
	Queries []string `json:"queries,omitempty"`
}

// citeResponse is the POST /cite reply. Result is set for single-query
// requests, Results for batches. Version is the latest committed store
// version for head requests, or the requested version for ?version=
// (time-travel) requests.
type citeResponse struct {
	Epoch   int64        `json:"epoch"`
	Version int          `json:"version"`
	Result  *CiteResult  `json:"result,omitempty"`
	Results []CiteResult `json:"results,omitempty"`
	// Trace is the request's span tree, echoed when the server has
	// TraceEcho enabled and the request asked with ?trace=1. The
	// snapshot is taken before the response is encoded, so the "encode"
	// span appears in /debug/traces and the slow-query log but not here.
	Trace *trace.TraceSnapshot `json:"trace,omitempty"`
}

// errEngineFault marks failures that are the server's own (an engine
// panic), not the client's; statusForError maps it to 500.
var errEngineFault = errors.New("server: engine fault")

// statusForError maps an engine error onto the HTTP status taxonomy:
// unparsable query 400, unknown version 404, deadline/cancellation 504,
// engine fault 500, and semantic failures (no rewriting over the views,
// unknown relation) 422.
func statusForError(err error) int {
	switch {
	case errors.Is(err, cq.ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, fixity.ErrUnknownVersion):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, errEngineFault):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// sampleTrace decides whether this request gets a span trace.
func (s *Server) sampleTrace() bool {
	sr := s.opts.TraceSample
	if sr >= 1 {
		return true
	}
	if sr <= 0 {
		return false
	}
	return rand.Float64() < sr
}

// observeTrace publishes one finished request trace to its four sinks:
// every ended span feeds the per-stage histograms, the trace enters the
// /debug/traces ring, a request at or over the slow-query threshold
// emits one slow-query log line with the full span tree, and the
// per-query statistics store accumulates the request's cost vector
// under each query's fingerprint. results carries the batch's per-query
// outcomes (nil when the request was rejected before computing — such
// requests have no per-query story to account).
func (s *Server) observeTrace(endpoint string, tr *trace.Trace, queries []string, results []CiteResult) {
	if tr == nil {
		return
	}
	for _, st := range tr.Stages() {
		if st.Name == endpoint {
			// The root span is the whole request, already covered by the
			// endpoint latency histogram.
			continue
		}
		s.metrics.stages.Observe(st.Name, st.Dur)
	}
	s.ring.Add(tr)
	if s.slowLog != nil && tr.Duration() >= s.opts.SlowQuery {
		s.slowLog.Log(trace.SlowEntry{
			Time:        time.Now().UTC(),
			TraceID:     tr.ID,
			Endpoint:    endpoint,
			DurUS:       tr.Duration().Microseconds(),
			ThresholdUS: s.opts.SlowQuery.Microseconds(),
			Queries:     queries,
			Spans:       tr.Root().Snapshot(),
		})
	}
	if s.qstats != nil && len(results) > 0 {
		outcomes := make([]qstats.Outcome, len(results))
		for i, res := range results {
			outcomes[i] = qstats.Outcome{
				Query: res.Query,
				Cache: res.Cache,
				Err:   res.Error != "",
			}
		}
		s.qstats.ObserveRequest(tr, outcomes)
	}
}

func (s *Server) handleCite(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	// Decode and validate before admission: malformed requests answer 400
	// immediately instead of queueing for (and wasting) a /cite slot.
	var version fixity.Version
	if vs := r.URL.Query().Get("version"); vs != "" {
		n, err := strconv.Atoi(vs)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid version %q: want a positive integer", vs))
			return
		}
		version = fixity.Version(n)
		// Reject unknown versions before admission and before touching the
		// cache: the whole batch targets one snapshot, so the check is one
		// store lookup, and the taxonomy makes it a 404.
		if _, err := s.sys.Store().At(version); err != nil {
			writeError(w, statusForError(err), err.Error())
			return
		}
	}
	var req citeRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	single := req.Query != ""
	queries := req.Queries
	switch {
	case single && len(queries) > 0:
		writeError(w, http.StatusBadRequest, `body must set exactly one of "query" or "queries"`)
		return
	case single:
		queries = []string{req.Query}
	case len(queries) == 0:
		writeError(w, http.StatusBadRequest, `body must set "query" or a non-empty "queries"`)
		return
	}
	// The trace starts after validation so every trace created is also
	// finished and observed (ring, stage histograms, slow-query log,
	// query statistics) on every remaining return path. results is
	// assigned after citeBatch, so a request rejected at admission feeds
	// the trace sinks but no per-query statistics (nil results).
	var results []CiteResult
	var tr *trace.Trace
	if s.sampleTrace() {
		tr = trace.New("cite")
		ctx = trace.NewContext(ctx, tr)
		defer func() {
			tr.Finish()
			s.observeTrace("cite", tr, queries, results)
		}()
	}
	var slot *slotRef
	if s.sem != nil {
		// The wait is measured directly (not via the admission span):
		// the histogram is always on, like the endpoint latencies, while
		// the span exists only on sampled requests.
		_, admSpan := trace.StartSpan(ctx, "admission")
		admStart := time.Now()
		select {
		case s.sem <- struct{}{}:
			s.metrics.admissionWait.Observe(time.Since(admStart))
			admSpan.End()
			slot = newSlotRef(func() { <-s.sem })
			defer slot.done()
		case <-ctx.Done():
			s.metrics.admissionWait.Observe(time.Since(admStart))
			admSpan.Set("rejected", true)
			admSpan.End()
			s.metrics.rejected.Add(1)
			writeError(w, http.StatusServiceUnavailable, "admission queue full: "+ctx.Err().Error())
			return
		}
	}

	batch, errs, epoch, respVersion, timedOut := s.citeBatch(ctx, queries, version, slot)
	results = batch
	if timedOut {
		s.metrics.timeouts.Add(1)
	}
	// Stamp the envelope with the epoch/version pair the batch was keyed
	// on, not a fresh read: a commit racing the response must not make
	// the envelope claim a version newer than the results it carries.
	resp := citeResponse{
		Epoch:   epoch,
		Version: int(respVersion),
	}
	if single {
		if errs[0] != nil {
			writeError(w, statusForError(errs[0]), results[0].Error)
			return
		}
		resp.Result = &results[0]
	} else {
		// Batches always answer 200; per-query failures travel in each
		// result's "error" field so one bad query cannot mask its
		// neighbors' citations.
		resp.Results = results
	}
	if tr != nil && s.opts.TraceEcho && r.URL.Query().Get("trace") == "1" {
		snap := tr.Snapshot()
		resp.Trace = &snap
	}
	_, encSpan := trace.StartSpan(ctx, "encode")
	n := writeJSON(w, http.StatusOK, resp)
	encSpan.Add("bytes", int64(n))
	encSpan.End()
}

// slotRef shares one admission slot between a request handler and the
// detached computation it may spawn: the slot frees only when the last
// holder releases it, so engine work stays bounded by MaxInFlight even
// when clients time out mid-compute and new requests are admitted. A nil
// *slotRef (admission control disabled) is a no-op.
type slotRef struct {
	holders atomic.Int32
	release func()
}

func newSlotRef(release func()) *slotRef {
	r := &slotRef{release: release}
	r.holders.Store(1)
	return r
}

func (r *slotRef) add() {
	if r != nil {
		r.holders.Add(1)
	}
}

func (r *slotRef) done() {
	if r != nil && r.holders.Add(-1) == 0 {
		r.release()
	}
}

// pendingResult tracks one batch position through the cache.
type pendingResult struct {
	idx   int
	key   cacheKey
	call  *cacheCall
	owner bool
}

// citeBatch resolves a batch of queries through the coalescing cache.
// Head batches (version 0) key on the epoch snapshot; version-pinned
// batches key on the requested version, whose entries are immutable and
// survive commits. Owned computations run in a detached goroutine
// (holding a reference to the caller's admission slot) so a caller
// timing out cannot strand coalesced waiters: the computation publishes
// to every waiter and fills the cache. The detached run carries its own
// deadline (Options.ComputeTimeout, detached from the client
// connection), which the engine's cooperative cancellation enforces — a
// runaway enumeration stops at the deadline instead of burning a worker
// indefinitely. errs reports each failed position's typed error (nil on
// success) for status mapping; timedOut reports whether any position
// was abandoned at the request deadline.
func (s *Server) citeBatch(ctx context.Context, queries []string, version fixity.Version, slot *slotRef) (results []CiteResult, errs []error, epoch int64, respVersion fixity.Version, timedOut bool) {
	var config int64
	epoch, config, respVersion = s.sys.Epochs()
	// Every key carries the config generation: SetPolicy/DefineView orphan
	// all entries at once. Head entries (version 0) survive commits and
	// are validated per lookup against the relations they actually read —
	// the delta invalidation rule; versioned entries are immutable and
	// need no validation.
	fresh := s.sys.DataFresh
	results = make([]CiteResult, len(queries))
	errs = make([]error, len(queries))
	var pending []pendingResult
	var owned []pendingResult
	// The cache span covers the lookup decisions only; waiting for (or
	// running) a computation is timed by the engine's own stage spans.
	_, cacheSpan := trace.StartSpan(ctx, "cache")
	for i, q := range queries {
		k := cacheKey{epoch: config, version: version, query: q}
		val, cached, cl, owner := s.cache.acquire(k, epoch, fresh)
		if cached {
			results[i] = val
			results[i].Cache = "hit"
			cacheSpan.Add("hits", 1)
			continue
		}
		p := pendingResult{idx: i, key: k, call: cl, owner: owner}
		pending = append(pending, p)
		if owner {
			owned = append(owned, p)
			cacheSpan.Add("misses", 1)
		} else {
			cacheSpan.Add("coalesced", 1)
		}
	}
	cacheSpan.End()
	if len(owned) > 0 {
		batch := make([]string, len(owned))
		for j, p := range owned {
			batch[j] = queries[p.idx]
		}
		s.computeWG.Add(1)
		slot.add()
		go func() {
			defer s.computeWG.Done()
			defer slot.done()
			// The computation is shared by every coalesced waiter, so it
			// must not die with the requesting client's connection; it
			// gets its own (longer) deadline instead, which cancels the
			// engine cooperatively. It does keep the requester's trace:
			// the engine's stage spans land in the tree of the request
			// that owned the miss (coalesced requests legitimately show
			// only the cache span).
			//lint:detach coalesced computation outlives the requesting client; it gets its own deadline below
			compCtx := trace.ContextWithSpan(context.Background(), trace.SpanFromContext(ctx))
			if s.opts.ComputeTimeout > 0 {
				var cancel context.CancelFunc
				compCtx, cancel = context.WithTimeout(compCtx, s.opts.ComputeTimeout)
				defer cancel()
			}
			completed := 0
			// This goroutine runs outside net/http's per-connection
			// recover: an engine panic must become a per-query error (and
			// release every coalesced waiter), not a process crash.
			defer func() {
				if r := recover(); r != nil {
					err := fmt.Errorf("%w: citation panicked: %v", errEngineFault, r)
					for _, p := range owned[completed:] {
						s.cache.complete(p.key, p.call, CiteResult{}, err, fresh)
					}
				}
			}()
			cites, cerrs := s.citer(compCtx, batch, version)
			for j, p := range owned {
				var val CiteResult
				err := cerrs[j]
				if err == nil && cites[j] == nil {
					err = fmt.Errorf("%w: citer returned no citation", errEngineFault)
				}
				if err == nil {
					val = NewCiteResult(batch[j], cites[j])
				}
				s.cache.complete(p.key, p.call, val, err, fresh)
				completed = j + 1
			}
		}()
	}
	// Within one batch a duplicated query coalesces onto the batch's own
	// owner; its call completes above, so waiting here cannot deadlock.
	for _, p := range pending {
		select {
		case <-p.call.done:
			if p.call.err != nil {
				results[p.idx] = CiteResult{Query: queries[p.idx], Error: p.call.err.Error()}
				errs[p.idx] = p.call.err
				continue
			}
			results[p.idx] = p.call.val
			if p.owner {
				results[p.idx].Cache = "miss"
			} else {
				results[p.idx].Cache = "coalesced"
			}
		case <-ctx.Done():
			timedOut = true
			results[p.idx] = CiteResult{
				Query: queries[p.idx],
				Error: "deadline exceeded: " + ctx.Err().Error(),
			}
			errs[p.idx] = ctx.Err()
		}
	}
	if version > 0 {
		respVersion = version
	}
	return results, errs, epoch, respVersion, timedOut
}

// commitRequest is the POST /commit body.
type commitRequest struct {
	Message string `json:"message"`
}

// versionInfo is the wire form of one commit record.
type versionInfo struct {
	Version   int       `json:"version"`
	Timestamp time.Time `json:"timestamp"`
	Message   string    `json:"message"`
	Tuples    int       `json:"tuples"`
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Message == "" {
		req.Message = "citeserved commit"
	}
	// CommitDelta pairs the commit with the epoch it produced — a racing
	// second commit cannot make this response claim its epoch — and with
	// the set of relations it touched.
	info, epoch, touched, err := s.sys.CommitDelta(req.Message)
	if err != nil {
		// Journal/checkpoint failures are the server's disk, not the
		// client's request.
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Delta invalidation: evict only the cached citations that read a
	// touched relation; every other head entry stays warm across the
	// commit, and version-pinned entries are immutable anyway. Freshness
	// validation at lookup already guarantees correctness — the purge
	// releases memory promptly and keeps the kept/evicted counters exact.
	s.cache.purgeTouched(touched)
	writeJSON(w, http.StatusOK, struct {
		Epoch int64 `json:"epoch"`
		versionInfo
	}{
		Epoch: epoch,
		versionInfo: versionInfo{
			Version:   int(info.Version),
			Timestamp: info.Timestamp,
			Message:   info.Message,
			Tuples:    info.Tuples,
		},
	})
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	epoch, latest := s.sys.Versions()
	history := s.sys.Store().History()
	// A commit racing the two reads above can only append; truncating to
	// the snapshotted latest keeps the response self-consistent.
	if int(latest) < len(history) {
		history = history[:latest]
	}
	out := struct {
		Epoch    int64         `json:"epoch"`
		Latest   int           `json:"latest"`
		Versions []versionInfo `json:"versions"`
	}{
		Epoch:    epoch,
		Latest:   int(latest),
		Versions: make([]versionInfo, len(history)),
	}
	for i, info := range history {
		out.Versions[i] = versionInfo{
			Version:   int(info.Version),
			Timestamp: info.Timestamp,
			Message:   info.Message,
			Tuples:    info.Tuples,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// ingestBatch is one relation's mutation batch: tuples to delete and
// tuples to insert, each an array of JSON values matching the relation's
// attribute kinds (numbers for int/float columns, strings for string
// columns, RFC3339 strings for time columns). Deletions apply before
// insertions.
type ingestBatch struct {
	Relation string              `json:"relation"`
	Insert   [][]json.RawMessage `json:"insert,omitempty"`
	Delete   [][]json.RawMessage `json:"delete,omitempty"`
}

// ingestRequest is the POST /ingest body: either a single batch inline
// (relation/insert/delete) or a list under "batches".
type ingestRequest struct {
	ingestBatch
	Batches []ingestBatch `json:"batches,omitempty"`
}

// ingestBatchResult reports one applied batch.
type ingestBatchResult struct {
	Relation string `json:"relation"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
}

// ingestResponse is the POST /ingest reply. Epoch is the system version
// token after the mutations: every batch below it is visible to any cite
// that observes this epoch.
type ingestResponse struct {
	Epoch    int64               `json:"epoch"`
	Inserted int                 `json:"inserted"`
	Deleted  int                 `json:"deleted"`
	Batches  []ingestBatchResult `json:"batches"`
}

// decodeTuple coerces one wire tuple onto the relation's attribute kinds.
func decodeTuple(rs *schema.Relation, raw []json.RawMessage) (storage.Tuple, error) {
	if len(raw) != rs.Arity() {
		return nil, fmt.Errorf("tuple arity %d, relation %s has %d", len(raw), rs.Name, rs.Arity())
	}
	t := make(storage.Tuple, len(raw))
	for i, rm := range raw {
		attr := rs.Attributes[i]
		switch attr.Kind {
		case value.KindString:
			var s string
			if err := json.Unmarshal(rm, &s); err != nil {
				return nil, fmt.Errorf("attribute %s: want a string: %v", attr.Name, err)
			}
			t[i] = value.String(s)
		case value.KindInt:
			var n int64
			if err := json.Unmarshal(rm, &n); err != nil {
				return nil, fmt.Errorf("attribute %s: want an integer: %v", attr.Name, err)
			}
			t[i] = value.Int(n)
		case value.KindFloat:
			var f float64
			if err := json.Unmarshal(rm, &f); err != nil {
				return nil, fmt.Errorf("attribute %s: want a number: %v", attr.Name, err)
			}
			t[i] = value.Float(f)
		case value.KindTime:
			var s string
			if err := json.Unmarshal(rm, &s); err != nil {
				return nil, fmt.Errorf("attribute %s: want an RFC3339 string: %v", attr.Name, err)
			}
			ts, err := time.Parse(time.RFC3339, s)
			if err != nil {
				return nil, fmt.Errorf("attribute %s: %v", attr.Name, err)
			}
			t[i] = value.Time(ts)
		default:
			return nil, fmt.Errorf("attribute %s: unsupported kind %s", attr.Name, attr.Kind)
		}
	}
	return t, nil
}

// handleIngest applies per-relation insert/delete batches to the head
// database through the system's journaled mutation API: on a durable
// system every batch reaches the commit log before storage, and in every
// case the system epoch advances so cached head citations turn over
// exactly as they do on commit. Ingest is admission-controlled by the
// same semaphore as /cite, so mutation pressure and citation load share
// one bound.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	var req ingestRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	single := req.Relation != "" || len(req.Insert) > 0 || len(req.Delete) > 0
	batches := req.Batches
	switch {
	case single && len(batches) > 0:
		writeError(w, http.StatusBadRequest, `body must set either "relation"/"insert"/"delete" or "batches", not both`)
		return
	case single:
		batches = []ingestBatch{req.ingestBatch}
	case len(batches) == 0:
		writeError(w, http.StatusBadRequest, `body must set "relation" or a non-empty "batches"`)
		return
	}
	// Decode and validate everything before admission and before applying
	// anything: a malformed batch answers 4xx without mutating state.
	sch := s.sys.Database().Schema()
	type decoded struct {
		relation string
		insert   []storage.Tuple
		delete   []storage.Tuple
	}
	work := make([]decoded, len(batches))
	for bi, b := range batches {
		if b.Relation == "" {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("batch %d: missing relation", bi))
			return
		}
		rs := sch.Relation(b.Relation)
		if rs == nil {
			writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("batch %d: unknown relation %s", bi, b.Relation))
			return
		}
		if len(b.Insert) == 0 && len(b.Delete) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("batch %d (%s): empty batch", bi, b.Relation))
			return
		}
		d := decoded{relation: b.Relation}
		for ti, raw := range b.Delete {
			t, err := decodeTuple(rs, raw)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("batch %d (%s): delete tuple %d: %v", bi, b.Relation, ti, err))
				return
			}
			d.delete = append(d.delete, t)
		}
		for ti, raw := range b.Insert {
			t, err := decodeTuple(rs, raw)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("batch %d (%s): insert tuple %d: %v", bi, b.Relation, ti, err))
				return
			}
			d.insert = append(d.insert, t)
		}
		work[bi] = d
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			s.metrics.rejected.Add(1)
			writeError(w, http.StatusServiceUnavailable, "admission queue full: "+ctx.Err().Error())
			return
		}
	}
	resp := ingestResponse{Batches: make([]ingestBatchResult, 0, len(work))}
	touched := make([]string, 0, len(work))
	for _, d := range work {
		res := ingestBatchResult{Relation: d.relation}
		if len(d.delete) > 0 {
			n, err := s.sys.Delete(d.relation, d.delete)
			if err != nil {
				// Validation passed above, so this is the journal's disk.
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			res.Deleted = n
		}
		if len(d.insert) > 0 {
			n, err := s.sys.Insert(d.relation, d.insert)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			res.Inserted = n
		}
		resp.Inserted += res.Inserted
		resp.Deleted += res.Deleted
		resp.Batches = append(resp.Batches, res)
		if res.Inserted > 0 || res.Deleted > 0 {
			touched = append(touched, d.relation)
		}
	}
	// Scope the purge to the relations this ingest actually changed:
	// cached citations over untouched relations stay warm (a no-op batch
	// evicts nothing), exactly as /commit does for its touched set.
	// Version-pinned entries target immutable snapshots and survive.
	s.cache.purgeTouched(touched)
	resp.Epoch = s.sys.Version()
	writeJSON(w, http.StatusOK, resp)
}

// relationInfo is the wire form of one relation's shape and cardinality.
type relationInfo struct {
	Name       string     `json:"name"`
	Arity      int        `json:"arity"`
	Tuples     int        `json:"tuples"`
	Attributes []attrInfo `json:"attributes"`
}

type attrInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Key  bool   `json:"key,omitempty"`
}

// handleRelations reports relation names, arities and cardinalities of
// the head database, or of committed snapshot N with ?version=N (404 on
// unknown versions).
func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	epoch, latest := s.sys.Versions()
	db := s.sys.Database()
	respVersion := int(latest)
	if vs := r.URL.Query().Get("version"); vs != "" {
		n, err := strconv.Atoi(vs)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid version %q: want a positive integer", vs))
			return
		}
		vdb, err := s.sys.Store().At(fixity.Version(n))
		if err != nil {
			writeError(w, statusForError(err), err.Error())
			return
		}
		db, respVersion = vdb, n
	}
	sch := db.Schema()
	out := struct {
		Epoch     int64          `json:"epoch"`
		Version   int            `json:"version"`
		Relations []relationInfo `json:"relations"`
	}{Epoch: epoch, Version: respVersion}
	for _, name := range sch.Names() {
		rs := sch.Relation(name)
		info := relationInfo{
			Name:       name,
			Arity:      rs.Arity(),
			Tuples:     db.Relation(name).Len(),
			Attributes: make([]attrInfo, rs.Arity()),
		}
		key := make(map[int]bool, len(rs.Key))
		for _, k := range rs.Key {
			key[k] = true
		}
		for i, a := range rs.Attributes {
			info.Attributes[i] = attrInfo{Name: a.Name, Kind: a.Kind.String(), Key: key[i]}
		}
		out.Relations = append(out.Relations, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// ViewInfo is the wire form of one registered citation view. It is the
// single report shape for views: GET /views serves it and citeviews
// -json embeds it, so the two encodings cannot drift apart.
type ViewInfo struct {
	Name            string        `json:"name"`
	Query           string        `json:"query"`
	Parameterized   bool          `json:"parameterized"`
	Params          []string      `json:"params,omitempty"`
	CitationQueries int           `json:"citation_queries"`
	Static          format.Record `json:"static,omitempty"`
}

// NewViewInfo converts a registered citation view into its wire form.
func NewViewInfo(v *citation.View) ViewInfo {
	return ViewInfo{
		Name:            v.Query.Name,
		Query:           v.Query.String(),
		Parameterized:   v.Query.IsParameterized(),
		Params:          v.Query.Params,
		CitationQueries: len(v.Citations),
		Static:          v.Static,
	}
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	views := s.sys.Registry().Views()
	out := struct {
		Count int        `json:"count"`
		Views []ViewInfo `json:"views"`
	}{Count: len(views), Views: make([]ViewInfo, len(views))}
	for i, v := range views {
		out.Views[i] = NewViewInfo(v)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	epoch, latest := s.sys.Versions()
	dur, _ := s.sys.Durability()
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		// Build is the ldflags-stamped build version, the same string
		// citeserved_build_info and citeserved -version report.
		Build   string `json:"build"`
		Epoch   int64  `json:"epoch"`
		Version int    `json:"version"`
		Views   int    `json:"views"`
		Durable bool   `json:"durable"`
		// RecoveredVersion is the latest committed version rebuilt from
		// the data directory at boot (0 when the process started fresh).
		RecoveredVersion int `json:"recovered_version"`
	}{
		Status:           "ok",
		Build:            Version,
		Epoch:            epoch,
		Version:          int(latest),
		Views:            s.sys.Registry().Len(),
		Durable:          dur.Enabled,
		RecoveredVersion: int(dur.RecoveredVersion),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.render(&b, s)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// methodOnly rejects every method but the given one with 405.
func (s *Server) methodOnly(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, "method "+r.Method+" not allowed")
			return
		}
		h(w, r)
	}
}

// decodeBody decodes a bounded JSON request body, rejecting trailing
// garbage.
func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, defaultBodyLimit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid request body: trailing data")
	}
	return nil
}

// writeJSON encodes v onto the response and returns the bytes written
// (the encode span's "bytes" attribute, which qstats aggregates into
// per-fingerprint response sizes).
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return cw.n
}

// countingWriter counts bytes on their way to the client.
type countingWriter struct {
	w io.Writer
	n int
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += n
	return n, err
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: msg})
}
