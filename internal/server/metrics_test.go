package server

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// expoSample is one parsed sample line of a Prometheus text scrape.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

var (
	expoHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	expoTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	expoSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
	expoLabelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)`)
)

// labelKey serializes a sample's labels (minus the excluded names) into
// a canonical comparison key.
func labelKey(labels map[string]string, exclude ...string) string {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !skip[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(labels[k])
		b.WriteString(",")
	}
	return b.String()
}

// parseExposition validates a /metrics scrape the way a strict scraper
// would — HELP before TYPE before samples, legal metric and label
// syntax, parsable values, histogram sample names resolving to a
// declared histogram family — and returns the samples plus the family
// type map.
func parseExposition(t *testing.T, text string) ([]expoSample, map[string]string) {
	t.Helper()
	types := make(map[string]string)
	helps := make(map[string]bool)
	var samples []expoSample
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if m := expoHelpRe.FindStringSubmatch(line); m != nil {
			if helps[m[1]] {
				t.Errorf("duplicate HELP for %s", m[1])
			}
			helps[m[1]] = true
			continue
		}
		if m := expoTypeRe.FindStringSubmatch(line); m != nil {
			if !helps[m[1]] {
				t.Errorf("TYPE without preceding HELP: %s", line)
			}
			if _, dup := types[m[1]]; dup {
				t.Errorf("duplicate TYPE for %s", m[1])
			}
			types[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("malformed comment line %q", line)
			continue
		}
		m := expoSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparsable sample line %q", line)
			continue
		}
		s := expoSample{name: m[1], labels: make(map[string]string), line: line}
		if expoFamily(m[1], types) == "" {
			t.Errorf("sample %q belongs to no declared family", line)
		}
		for rest := m[2]; rest != ""; {
			lm := expoLabelRe.FindStringSubmatch(rest)
			if lm == nil {
				t.Errorf("bad label syntax in %q (at %q)", line, rest)
				break
			}
			s.labels[lm[1]] = lm[2]
			rest = rest[len(lm[0]):]
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil && m[3] != "+Inf" && m[3] != "NaN" {
			t.Errorf("bad value in %q: %v", line, err)
		}
		s.value = v
		samples = append(samples, s)
	}
	return samples, types
}

// expoFamily resolves a sample name to its declared family: the name
// itself, or — for _bucket/_sum/_count suffixes — a declared histogram
// base name.
func expoFamily(name string, types map[string]string) string {
	if types[name] != "" {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

// checkHistogramFamilies asserts every histogram family is internally
// consistent: buckets cumulative in le order, the +Inf bucket equal to
// the _count sample, and a _sum present per label set.
func checkHistogramFamilies(t *testing.T, samples []expoSample, types map[string]string) {
	t.Helper()
	type series struct {
		buckets map[string]float64 // le -> cumulative count
		sum     *float64
		count   *float64
	}
	groups := make(map[string]*series) // family + labelKey(minus le)
	get := func(fam string, labels map[string]string) *series {
		k := fam + "|" + labelKey(labels, "le")
		g := groups[k]
		if g == nil {
			g = &series{buckets: make(map[string]float64)}
			groups[k] = g
		}
		return g
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket") && types[strings.TrimSuffix(s.name, "_bucket")] == "histogram":
			fam := strings.TrimSuffix(s.name, "_bucket")
			le, ok := s.labels["le"]
			if !ok {
				t.Errorf("bucket sample without le label: %s", s.line)
				continue
			}
			get(fam, s.labels).buckets[le] = s.value
		case strings.HasSuffix(s.name, "_sum") && types[strings.TrimSuffix(s.name, "_sum")] == "histogram":
			v := s.value
			get(strings.TrimSuffix(s.name, "_sum"), s.labels).sum = &v
		case strings.HasSuffix(s.name, "_count") && types[strings.TrimSuffix(s.name, "_count")] == "histogram":
			v := s.value
			get(strings.TrimSuffix(s.name, "_count"), s.labels).count = &v
		}
	}
	if len(groups) == 0 {
		t.Fatal("no histogram series found")
	}
	for key, g := range groups {
		if g.sum == nil || g.count == nil {
			t.Errorf("%s: histogram series missing _sum or _count", key)
			continue
		}
		inf, ok := g.buckets["+Inf"]
		if !ok {
			t.Errorf("%s: histogram series missing +Inf bucket", key)
			continue
		}
		if inf != *g.count {
			t.Errorf("%s: +Inf bucket %g != count %g", key, inf, *g.count)
		}
		les := make([]float64, 0, len(g.buckets))
		for le := range g.buckets {
			if le == "+Inf" {
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Errorf("%s: unparsable le %q", key, le)
				continue
			}
			les = append(les, f)
		}
		sort.Float64s(les)
		prev := 0.0
		for _, le := range les {
			v := g.buckets[strconv.FormatFloat(le, 'g', -1, 64)]
			if v < prev {
				t.Errorf("%s: bucket le=%g count %g below previous %g (not cumulative)", key, le, v, prev)
			}
			prev = v
		}
		if inf < prev {
			t.Errorf("%s: +Inf bucket %g below largest finite bucket %g", key, inf, prev)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := paperServer(t, Options{})
	client := ts.Client()
	// Traffic: a cache miss, a hit, and a parse failure, so counters,
	// error counters, latency histograms and stage histograms all have
	// observations.
	postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	postJSON(t, client, ts.URL+"/cite", citeRequest{Query: "not a query ("})

	scrape1 := getText(t, client, ts.URL+"/metrics")
	samples1, types1 := parseExposition(t, scrape1)
	checkHistogramFamilies(t, samples1, types1)

	if types1["citeserved_request_duration_seconds"] != "histogram" {
		t.Fatalf("citeserved_request_duration_seconds must be a histogram, got %q", types1["citeserved_request_duration_seconds"])
	}
	find := func(samples []expoSample, name string, want map[string]string) *expoSample {
		for i, s := range samples {
			if s.name != name {
				continue
			}
			ok := true
			for k, v := range want {
				if s.labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				return &samples[i]
			}
		}
		return nil
	}
	if s := find(samples1, "citeserved_request_duration_seconds_count", map[string]string{"endpoint": "cite"}); s == nil || s.value < 3 {
		t.Errorf("cite duration histogram must count the 3 requests: %+v", s)
	}
	if s := find(samples1, "citeserved_build_info", nil); s == nil {
		t.Error("missing citeserved_build_info")
	} else {
		if s.labels["version"] != Version || s.labels["go_version"] != runtime.Version() || s.value != 1 {
			t.Errorf("bad build info: %s", s.line)
		}
	}
	for _, stage := range []string{"parse", "rewrite", "eval", "fixity", "cache", "encode"} {
		if s := find(samples1, "citeserved_stage_duration_seconds_count", map[string]string{"stage": stage}); s == nil || s.value < 1 {
			t.Errorf("stage %q has no duration observations", stage)
		}
	}
	for _, name := range []string{"citeserved_goroutines", "citeserved_heap_alloc_bytes", "citeserved_gc_cycles_total"} {
		if find(samples1, name, nil) == nil {
			t.Errorf("missing runtime metric %s", name)
		}
	}
	if s := find(samples1, "citeserved_request_errors_total", map[string]string{"endpoint": "cite"}); s == nil || s.value < 1 {
		t.Errorf("the parse failure must count as an error: %+v", s)
	}

	// Counters must be monotonic across scrapes (histogram buckets,
	// sums and counts included — they are cumulative too).
	postJSON(t, client, ts.URL+"/cite", citeRequest{Query: paperQuery})
	scrape2 := getText(t, client, ts.URL+"/metrics")
	samples2, types2 := parseExposition(t, scrape2)
	checkHistogramFamilies(t, samples2, types2)
	for _, s1 := range samples1 {
		fam := expoFamily(s1.name, types1)
		if types1[fam] != "counter" && types1[fam] != "histogram" {
			continue
		}
		s2 := find(samples2, s1.name, s1.labels)
		if s2 == nil {
			t.Errorf("counter series vanished between scrapes: %s", s1.line)
			continue
		}
		if s2.value < s1.value {
			t.Errorf("counter went backwards: %q %g -> %g", s1.line, s1.value, s2.value)
		}
	}
}

func TestStatusRecorderFlush(t *testing.T) {
	rr := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: rr, status: http.StatusOK}
	// The wrapper must satisfy http.Flusher and forward to the wrapped
	// writer, or streaming handlers behind instrument() silently buffer.
	var f http.Flusher = rec
	f.Flush()
	if !rr.Flushed {
		t.Fatal("statusRecorder.Flush must pass through to the underlying writer")
	}
}
