package datacitation_test

// Façade-level test of the serving layer: build a System through the
// public API, wrap it in NewServer, and drive it over httptest — the
// embedding path an importing repository uses.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	datacitation "repro"
)

func TestPublicAPIServer(t *testing.T) {
	sys := buildSystem(t)
	sys.Commit("base")
	srv := datacitation.NewServer(sys, datacitation.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, err := json.Marshal(map[string]string{
		"query": "Q(FName) :- Family(FID, FName, Desc)",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Post(ts.URL+"/cite", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cite status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Version int                            `json:"version"`
		Result  *datacitation.ServerCiteResult `json:"result"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad response: %v\n%s", err, raw)
	}
	if out.Version != 1 || out.Result == nil || len(out.Result.Record) == 0 {
		t.Errorf("response: %s", raw)
	}
	if out.Result.Pin == nil || out.Result.Pin.Version != 1 {
		t.Errorf("pin: %+v", out.Result.Pin)
	}
	if stats := srv.CacheStats(); stats.Misses != 1 {
		t.Errorf("misses = %d", stats.Misses)
	}
}
