package datacitation

// Benchmarks, one per experiment in EXPERIMENTS.md (the paper has no
// measured tables; each experiment operationalizes a prose claim — see
// DESIGN.md §4 for the index). Run with:
//
//	go test -bench=. -benchmem
//
// cmd/citebench prints the corresponding parameter-sweep tables.

import (
	"fmt"
	"testing"

	"repro/internal/advisor"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/evolution"
	"repro/internal/experiments"
	"repro/internal/gtopdb"
	"repro/internal/policy"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BenchmarkE0PaperExample measures the full pipeline on the paper's §2
// instance: rewrite, annotate, select with +R, resolve, format.
func BenchmarkE0PaperExample(b *testing.B) {
	sys, err := experiments.PaperSystem()
	if err != nil {
		b.Fatal(err)
	}
	q := experiments.PaperQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Generator().Cite(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1RewritingSearch compares exhaustive citation generation
// (evaluate all copies^joins rewritings) with cost-pruned generation.
func BenchmarkE1RewritingSearch(b *testing.B) {
	for _, mode := range []string{"exhaustive", "pruned"} {
		b.Run(mode, func(b *testing.B) {
			cs, err := experiments.NewChainSetup(3, 3, 50)
			if err != nil {
				b.Fatal(err)
			}
			gen := cs.Sys.Generator()
			gen.CostPruned = mode == "pruned"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Cite(cs.Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2CitationSize measures citation generation under the two +R
// policies whose output sizes the paper contrasts.
func BenchmarkE2CitationSize(b *testing.B) {
	for _, pol := range []string{"minsize", "maxcoverage"} {
		b.Run(pol, func(b *testing.B) {
			sys, err := experiments.GtoPdbSystem(1000)
			if err != nil {
				b.Fatal(err)
			}
			gen := sys.Generator()
			if pol == "maxcoverage" {
				p := policy.Default()
				p.AltR = policy.MaxCoverage
				gen.SetPolicy(p)
			}
			q := cq.MustParse("Q(FID, FName) :- Family(FID, FName, Desc)")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Cite(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3GenerationLatency measures warm end-to-end generation at
// several database sizes.
func BenchmarkE3GenerationLatency(b *testing.B) {
	for _, families := range []int{100, 1000} {
		b.Run(fmt.Sprintf("families-%d", families), func(b *testing.B) {
			sys, err := experiments.GtoPdbSystem(families)
			if err != nil {
				b.Fatal(err)
			}
			gen := sys.Generator()
			q := cq.MustParse("Q(FName, Text) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
			if _, err := gen.Cite(q); err != nil { // warm the caches
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Cite(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4Incremental compares per-delta incremental maintenance with
// full view recomputation.
func BenchmarkE4Incremental(b *testing.B) {
	const families = 1000
	b.Run("incremental", func(b *testing.B) {
		sys, err := experiments.GtoPdbSystem(families)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Generator().Materialized("FamilyView"); err != nil {
			b.Fatal(err)
		}
		m := evolution.NewMaintainer(sys.Generator())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fid := int64(1000000 + i)
			d := evolution.Insert("Family", storage.Tuple{
				Int(fid), String(fmt.Sprintf("bench family %d", i)), String("bench"),
			})
			if err := m.Apply(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		sys, err := experiments.GtoPdbSystem(families)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Generator().Materialized("FamilyView"); err != nil {
			b.Fatal(err)
		}
		m := evolution.NewMaintainer(sys.Generator())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fid := int64(1000000 + i)
			d := evolution.Insert("Family", storage.Tuple{
				Int(fid), String(fmt.Sprintf("bench family %d", i)), String("bench"),
			})
			if err := m.RecomputeAll([]evolution.Delta{d}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5MiniConVsBucket measures rewriting enumeration alone for both
// algorithms.
func BenchmarkE5MiniConVsBucket(b *testing.B) {
	cs, err := experiments.NewChainSetup(3, 4, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []rewrite.Method{rewrite.MethodMiniCon, rewrite.MethodBucket} {
		b.Run(m.String(), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Rewrite(cs.Query, cs.Views, rewrite.Options{Method: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Fixity measures commit, as-of execution, and digest
// verification on a versioned store.
func BenchmarkE6Fixity(b *testing.B) {
	sys, err := experiments.GtoPdbSystem(500)
	if err != nil {
		b.Fatal(err)
	}
	store := sys.Store()
	q := cq.MustParse("Q(FName) :- Family(FID, FName, Desc)")
	sys.Commit("base")
	b.Run("commit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.Commit(fmt.Sprintf("bench %d", i))
		}
	})
	b.Run("asof", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := store.Execute(q, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	_, pin, err := store.ExecuteLatest(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok, err := store.Verify(pin)
			if err != nil || !ok {
				b.Fatalf("verify failed: ok=%v err=%v", ok, err)
			}
		}
	})
}

// BenchmarkE7Coverage measures workload-coverage analysis over the
// extended GtoPdb schema.
func BenchmarkE7Coverage(b *testing.B) {
	sys, err := experiments.GtoPdbSystemWithViews(100, []string{
		"FamilyV(FID, FName, Desc) :- Family(FID, FName, Desc)",
		"IntroV(FID, Text) :- FamilyIntro(FID, Text)",
		"CommitteeV(FID, PName) :- Committee(FID, PName)",
	})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := workload.Generate(gtopdb.Schema(), workload.Config{
		Queries: 50, MinAtoms: 1, MaxAtoms: 3, ProjectRate: 0.6, Shape: workload.Chain, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Registry().AnalyzeCoverage(qs, rewrite.MethodMiniCon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9ViewAdvisor measures greedy view recommendation over a random
// workload.
func BenchmarkE9ViewAdvisor(b *testing.B) {
	s := gtopdb.Schema()
	wl, err := workload.Generate(s, workload.Config{
		Queries: 30, MinAtoms: 1, MaxAtoms: 2, ProjectRate: 0.7, Seed: 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := advisor.Recommend(s, wl, advisor.Options{MaxViews: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10ConcurrentCite measures citation-serving throughput at
// 1/4/16 concurrent citers draining a shared iteration budget over the
// gtopdb-style workload — the concurrent-engine counterpart of E3. The
// per-op time is the wall-clock per citation; throughput is its inverse.
// cmd/citebench reports the same sweep (citebench -only E10 -json).
func BenchmarkE10ConcurrentCite(b *testing.B) {
	sys, err := experiments.GtoPdbSystem(300)
	if err != nil {
		b.Fatal(err)
	}
	sys.Commit("bench base")
	for _, q := range experiments.E10Workload() { // warm the shared caches
		if _, err := sys.Cite(q); err != nil {
			b.Fatal(err)
		}
	}
	for _, citers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("citers-%d", citers), func(b *testing.B) {
			b.ResetTimer()
			if err := experiments.DrainCites(sys, citers, b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE11PlanReuse contrasts compile-per-call annotated evaluation
// with a warm compiled plan on the gtopdb two-way join — the per-query
// planning overhead the citation generator's plan cache removes from
// every warm Cite. cmd/citebench reports the same comparison with an
// allocs/op column (citebench -only E11).
func BenchmarkE11PlanReuse(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 1000
	db := gtopdb.Generate(cfg)
	db.BuildIndexes()
	q := cq.MustParse("Q(FName, Text) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
	sr := semiring.Natural{}
	count := func(string, storage.Tuple) int { return 1 }
	b.Run("compile-per-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.EvalAnnotated[int](db, q, sr, count); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-plan", func(b *testing.B) {
		plan, err := eval.Compile(db, q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eval.RunAnnotated[int](plan, sr, count)
		}
	})
}

// BenchmarkE8AnnotationOverhead compares plain evaluation with annotated
// evaluation across semirings on a two-way join.
func BenchmarkE8AnnotationOverhead(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 500
	db := gtopdb.Generate(cfg)
	q := cq.MustParse("Q(FName, PName) :- Family(FID, FName, Desc), Committee(FID, PName)")
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Eval(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := eval.EvalAnnotated[bool](db, q, semiring.Bool{},
				func(string, storage.Tuple) bool { return true })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := eval.EvalAnnotated[int](db, q, semiring.Natural{},
				func(string, storage.Tuple) int { return 1 })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("why", func(b *testing.B) {
		sr := semiring.Why{}
		for i := 0; i < b.N; i++ {
			_, err := eval.EvalAnnotated[semiring.WhySet](db, q, sr,
				func(pred string, tp storage.Tuple) semiring.WhySet {
					return sr.Singleton(pred + ":" + tp.Key())
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("poly", func(b *testing.B) {
		sr := semiring.Polynomial{}
		for i := 0; i < b.N; i++ {
			_, err := eval.EvalAnnotated[semiring.Poly](db, q, sr,
				func(pred string, tp storage.Tuple) semiring.Poly {
					return sr.Token(pred + ":" + tp.Key())
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
