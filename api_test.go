package datacitation_test

// Black-box tests of the public API: everything a downstream user touches
// goes through the root package.

import (
	"errors"
	"strings"
	"testing"

	datacitation "repro"
)

func buildSystem(t *testing.T) *datacitation.System {
	t.Helper()
	s := datacitation.NewSchema()
	family, err := datacitation.NewRelationSchema("Family", []datacitation.Attribute{
		{Name: "FID", Kind: datacitation.KindInt},
		{Name: "FName", Kind: datacitation.KindString},
		{Name: "Desc", Kind: datacitation.KindString},
	}, "FID")
	if err != nil {
		t.Fatal(err)
	}
	s.MustAdd(family)
	committee, err := datacitation.NewRelationSchema("Committee", []datacitation.Attribute{
		{Name: "FID", Kind: datacitation.KindInt},
		{Name: "PName", Kind: datacitation.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.MustAdd(committee)

	sys := datacitation.NewSystem(s)
	db := sys.Database()
	rows := [][]datacitation.Value{
		{datacitation.Int(1), datacitation.String("Calcitonin"), datacitation.String("C1")},
		{datacitation.Int(2), datacitation.String("Adenosine"), datacitation.String("A1")},
	}
	for _, r := range rows {
		if err := db.Insert("Family", r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("Committee", datacitation.Int(1), datacitation.String("Alice")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Committee", datacitation.Int(2), datacitation.String("Bob")); err != nil {
		t.Fatal(err)
	}
	db.BuildIndexes()

	if err := sys.DefineView(
		"lambda FID. FamView(FID, FName, Desc) :- Family(FID, FName, Desc)",
		datacitation.NewRecord(datacitation.FieldDatabase, "GtoPdb"),
		datacitation.CitationSpec{
			Query:  "lambda FID. CFam(FID, PName) :- Committee(FID, PName)",
			Fields: []string{datacitation.FieldIdentifier, datacitation.FieldAuthor},
		}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPICiteLifecycle(t *testing.T) {
	sys := buildSystem(t)
	sys.Commit("release 1")
	cite, err := sys.Cite("Q(FID, FName) :- Family(FID, FName, Desc)")
	if err != nil {
		t.Fatal(err)
	}
	if len(cite.Result.Tuples) != 2 {
		t.Fatalf("tuples %d", len(cite.Result.Tuples))
	}
	if cite.Pin == nil || cite.Pin.Version != 1 {
		t.Fatalf("pin %+v", cite.Pin)
	}
	txt := cite.Text()
	if !strings.Contains(txt, "GtoPdb") || !strings.Contains(txt, "version=1") {
		t.Errorf("text %q", txt)
	}
}

func TestPublicAPIPolicySwitch(t *testing.T) {
	sys := buildSystem(t)
	p := datacitation.DefaultPolicy()
	p.AltR = datacitation.SelectMaxCoverage
	sys.SetPolicy(p)
	cite, err := sys.Cite("Q(FID, FName) :- Family(FID, FName, Desc)")
	if err != nil {
		t.Fatal(err)
	}
	authors := cite.Result.Record[datacitation.FieldAuthor]
	if len(authors) != 2 {
		t.Errorf("authors %v, want Alice and Bob", authors)
	}
}

func TestPublicAPIErrNoRewriting(t *testing.T) {
	sys := buildSystem(t)
	_, err := sys.Cite("Q(P) :- Committee(F, P)")
	if !errors.Is(err, datacitation.ErrNoRewriting) {
		t.Fatalf("err = %v, want ErrNoRewriting", err)
	}
}

func TestPublicAPIExprSize(t *testing.T) {
	sys := buildSystem(t)
	cite, err := sys.Cite("Q(FID, FName) :- Family(FID, FName, Desc)")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cite.Result.Tuples {
		if datacitation.ExprSize(tc.Selected) == 0 {
			t.Errorf("tuple %s has empty citation expression", tc.Tuple)
		}
	}
}

func TestPublicAPIQueryParsing(t *testing.T) {
	q, err := datacitation.ParseQuery("lambda A. V(A, B) :- R(A, B)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsParameterized() {
		t.Error("parameters lost")
	}
	if _, err := datacitation.ParseQuery("broken(("); err == nil {
		t.Error("bad query accepted")
	}
}

func TestPublicAPIFormatters(t *testing.T) {
	rec := datacitation.NewRecord(
		datacitation.FieldAuthor, "A",
		datacitation.FieldTitle, "T",
	)
	if out := datacitation.FormatText(rec); !strings.Contains(out, "A") {
		t.Errorf("text %q", out)
	}
	if out := datacitation.FormatBibTeX(rec, "key"); !strings.Contains(out, "@misc{key,") {
		t.Errorf("bibtex %q", out)
	}
	if out := datacitation.FormatRIS(rec); !strings.HasPrefix(out, "TY  - DBASE") {
		t.Errorf("ris %q", out)
	}
	if out, err := datacitation.FormatXML(rec); err != nil || !strings.Contains(out, "<citation>") {
		t.Errorf("xml %q err %v", out, err)
	}
	if out, err := datacitation.FormatJSON(rec); err != nil || !strings.Contains(out, "\"author\"") {
		t.Errorf("json %q err %v", out, err)
	}
}

func TestPublicAPIArchive(t *testing.T) {
	sys := buildSystem(t)
	p := datacitation.DefaultPolicy()
	p.AltR = datacitation.SelectMaxCoverage
	sys.SetPolicy(p)
	cite, err := sys.Cite("Q(FID, FName) :- Family(FID, FName, Desc)")
	if err != nil {
		t.Fatal(err)
	}
	store := datacitation.NewCiteStore()
	ref, compact := cite.Archive(store)
	if len(ref) == 0 || !strings.Contains(compact, ref) {
		t.Fatalf("ref %q compact %q", ref, compact)
	}
	ext, ok := store.Get(ref)
	if !ok {
		t.Fatal("archived citation not resolvable")
	}
	if !ext.Record.Equal(cite.Result.Record) {
		t.Error("archived record differs")
	}
	// Searchable by curator.
	if refs := store.Search(datacitation.FieldAuthor, "Alice"); len(refs) != 1 || refs[0] != ref {
		t.Errorf("search %v", refs)
	}
	// Idempotent.
	ref2, _ := cite.Archive(store)
	if ref2 != ref || store.Len() != 1 {
		t.Error("archive not idempotent")
	}
}

func TestPublicAPIRewriteMethods(t *testing.T) {
	sys := buildSystem(t)
	sys.Generator().Method = datacitation.Bucket
	cite, err := sys.Cite("Q(FID, FName) :- Family(FID, FName, Desc)")
	if err != nil {
		t.Fatal(err)
	}
	if len(cite.Result.Tuples) != 2 {
		t.Errorf("bucket method tuples %d", len(cite.Result.Tuples))
	}
}
