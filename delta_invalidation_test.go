package datacitation_test

// Delta-invalidation correctness at the public API, in the style of
// TestParallelCiteDeterminism: after a commit touching relation R, every
// citation served from surviving caches must be byte-identical to a
// fresh recomputation, and every query reading R must recompute and see
// the new data. Run under -race (the CI does) — concurrent citers hammer
// both query families while the writer commits single-relation deltas.

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	datacitation "repro"
)

// contentText canonicalizes a citation's content for byte-identity
// comparison: the full rendered text with the pin reduced to the result
// digest — the pin's version and retrieval timestamp legitimately track
// the commit history, while the digest pins the bytes of the answer.
func contentText(c *datacitation.Citation) string {
	out := c.Result.Expr.String() + "\n" + c.Text()
	if c.Pin != nil {
		out = c.Result.Expr.String() + "\nsha256=" + c.Pin.Digest
		for _, tc := range c.Result.Tuples {
			out += "\n" + tc.Expr.String() + "|" + tc.Selected.String()
		}
	}
	return out
}

// buildDeltaSystem extends the API-test fixture with a third relation
// and a second view so the workload splits into two query families with
// disjoint read-sets: Family queries read {Committee, Family} and
// FamilyIntro queries read only {FamilyIntro}.
func buildDeltaSystem(t *testing.T) *datacitation.System {
	t.Helper()
	s := datacitation.NewSchema()
	family, err := datacitation.NewRelationSchema("Family", []datacitation.Attribute{
		{Name: "FID", Kind: datacitation.KindInt},
		{Name: "FName", Kind: datacitation.KindString},
		{Name: "Desc", Kind: datacitation.KindString},
	}, "FID")
	if err != nil {
		t.Fatal(err)
	}
	s.MustAdd(family)
	committee, err := datacitation.NewRelationSchema("Committee", []datacitation.Attribute{
		{Name: "FID", Kind: datacitation.KindInt},
		{Name: "PName", Kind: datacitation.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.MustAdd(committee)
	intro, err := datacitation.NewRelationSchema("FamilyIntro", []datacitation.Attribute{
		{Name: "FID", Kind: datacitation.KindInt},
		{Name: "Text", Kind: datacitation.KindString},
	}, "FID")
	if err != nil {
		t.Fatal(err)
	}
	s.MustAdd(intro)

	sys := datacitation.NewSystem(s)
	db := sys.Database()
	for _, r := range [][]datacitation.Value{
		{datacitation.Int(1), datacitation.String("Calcitonin"), datacitation.String("C1")},
		{datacitation.Int(2), datacitation.String("Adenosine"), datacitation.String("A1")},
	} {
		if err := db.Insert("Family", r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("Committee", datacitation.Int(1), datacitation.String("Alice")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Committee", datacitation.Int(2), datacitation.String("Bob")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("FamilyIntro", datacitation.Int(1), datacitation.String("intro 1")); err != nil {
		t.Fatal(err)
	}
	db.BuildIndexes()

	if err := sys.DefineView(
		"lambda FID. FamView(FID, FName, Desc) :- Family(FID, FName, Desc)",
		datacitation.NewRecord(datacitation.FieldDatabase, "GtoPdb"),
		datacitation.CitationSpec{
			Query:  "lambda FID. CFam(FID, PName) :- Committee(FID, PName)",
			Fields: []string{datacitation.FieldIdentifier, datacitation.FieldAuthor},
		}); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineView(
		"lambda FID. IntroView(FID, Text) :- FamilyIntro(FID, Text)",
		datacitation.NewRecord(datacitation.FieldDatabase, "GtoPdb"),
		datacitation.CitationSpec{
			Query:  "lambda FID. CIntro(FID, Text) :- FamilyIntro(FID, Text)",
			Fields: []string{datacitation.FieldIdentifier, datacitation.FieldTitle},
		}); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestDeltaInvalidationByteIdentity commits single-relation FamilyIntro
// deltas while concurrent citers hammer both query families, and after
// every commit asserts (a) the untouched Family citation — served from
// surviving plan/view/atom caches — is byte-identical to its pre-commit
// form, (b) the FamilyIntro citation recomputes and reflects the new
// tuples, and (c) at the end, a fully cold recomputation reproduces the
// warm results byte for byte.
func TestDeltaInvalidationByteIdentity(t *testing.T) {
	sys := buildDeltaSystem(t)
	sys.Commit("base")

	const (
		qFam   = "Q(FName) :- Family(FID, FName, Desc)"
		qIntro = "Q(Text) :- FamilyIntro(FID, Text)"
		rounds = 4
		citers = 8
	)

	famCite, err := sys.Cite(qFam)
	if err != nil {
		t.Fatal(err)
	}
	if got := famCite.Result.Reads; !reflect.DeepEqual(got, []string{"Committee", "Family"}) {
		t.Fatalf("Family query Reads = %v, want [Committee Family]", got)
	}
	famText := contentText(famCite)
	introCite, err := sys.Cite(qIntro)
	if err != nil {
		t.Fatal(err)
	}
	if got := introCite.Result.Reads; !reflect.DeepEqual(got, []string{"FamilyIntro"}) {
		t.Fatalf("FamilyIntro query Reads = %v, want [FamilyIntro]", got)
	}
	introTuples := len(introCite.Result.Tuples)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, citers)
	for w := 0; w < citers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := []string{qFam, qIntro}
			for i := 0; !stop.Load(); i++ {
				c, err := sys.Cite(queries[(w+i)%len(queries)])
				if err != nil {
					errc <- fmt.Errorf("citer %d iter %d: %w", w, i, err)
					return
				}
				if len(c.Result.Tuples) == 0 {
					errc <- fmt.Errorf("citer %d iter %d: empty citation", w, i)
					return
				}
			}
		}(w)
	}

	db := sys.Database()
	for r := 1; r <= rounds; r++ {
		if err := db.Insert("FamilyIntro",
			datacitation.Int(int64(100+r)), datacitation.String(fmt.Sprintf("delta intro %d", r))); err != nil {
			t.Fatal(err)
		}
		_, _, touched, err := sys.CommitDelta(fmt.Sprintf("delta %d", r))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(touched, []string{"FamilyIntro"}) {
			t.Fatalf("round %d: touched = %v, want [FamilyIntro]", r, touched)
		}

		// Untouched family: the surviving caches serve the same bytes.
		fc, err := sys.Cite(qFam)
		if err != nil {
			t.Fatal(err)
		}
		if got := contentText(fc); got != famText {
			t.Fatalf("round %d: survivor-served Family citation diverged:\n got %s\nwant %s", r, got, famText)
		}
		// Touched intro: the citation recomputes and sees the new tuple.
		ic, err := sys.Cite(qIntro)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(ic.Result.Tuples), introTuples+r; got != want {
			t.Fatalf("round %d: FamilyIntro citation has %d tuples, want %d (stale cache?)", r, got, want)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Cold-cache recomputation must reproduce the warm results byte for
	// byte — the survivors never served stale data.
	warmFam, err := sys.Cite(qFam)
	if err != nil {
		t.Fatal(err)
	}
	warmIntro, err := sys.Cite(qIntro)
	if err != nil {
		t.Fatal(err)
	}
	sys.Generator().InvalidateCache()
	coldFam, err := sys.Cite(qFam)
	if err != nil {
		t.Fatal(err)
	}
	coldIntro, err := sys.Cite(qIntro)
	if err != nil {
		t.Fatal(err)
	}
	if contentText(warmFam) != contentText(coldFam) {
		t.Errorf("Family: warm %s\ncold %s", contentText(warmFam), contentText(coldFam))
	}
	if contentText(warmIntro) != contentText(coldIntro) {
		t.Errorf("FamilyIntro: warm %s\ncold %s", contentText(warmIntro), contentText(coldIntro))
	}
}
