// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so CI can archive benchmark baselines —
// BENCH_eval.json in the bench-smoke job — that later PRs diff against
// for a performance trajectory.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_eval.json
//
// Standard benchmark lines parse into objects with per-metric fields;
// context lines (goos, goarch, pkg, cpu) are captured as environment
// metadata. Unknown lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any further "value unit" metric pairs (e.g. MB/s or
	// custom b.ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Output is the archived document.
type Output struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := Output{Env: map[string]string{}, Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				out.Benchmarks = append(out.Benchmarks, r)
			}
		case hasEnvPrefix(line):
			k, v, _ := strings.Cut(line, ":")
			out.Env[k] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

func hasEnvPrefix(line string) bool {
	for _, p := range []string{"goos:", "goarch:", "pkg:", "cpu:"} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return false
}

// parseBench parses "BenchmarkName-8  1314  982525 ns/op  300029 B/op ...".
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = val
		}
	}
	return r, true
}
