// Command citeserved serves a citation-enabled database over HTTP — the
// paper's deployment model: the repository runs the citation engine as a
// service against its live, evolving database, and clients retrieve
// citations for the query results they used.
//
// It loads a spec file (see internal/spec), commits the loaded state as
// version 1 so every citation carries a fixity pin, and serves the
// internal/server endpoints until SIGINT/SIGTERM, then drains in-flight
// requests and exits.
//
// Usage:
//
//	citeserved -spec db.dcs [-addr :8377] [-cache 1024] [-timeout 30s]
//	           [-compute-timeout 0] [-max-inflight 0] [-parallelism 0]
//	           [-policy minsize|maxcoverage|all] [-no-commit]
//
// Quickstart against the repository's paper fixture:
//
//	citeserved -spec testdata/paper.dcs &
//	curl -s localhost:8377/healthz
//	curl -s -X POST localhost:8377/cite \
//	     -d '{"query": "Q(FName) :- Family(FID, FName, Desc)"}'
//
// Time travel: after further commits (POST /commit), any committed
// version can still be cited — the result is byte-identical to the
// citation generated while that version was live, answers from a cache
// that commits never invalidate, and unknown versions answer 404:
//
//	curl -s -X POST 'localhost:8377/cite?version=1' \
//	     -d '{"query": "Q(FName) :- Family(FID, FName, Desc)"}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	datacitation "repro"
	"repro/internal/server"
	"repro/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("citeserved: ")
	specPath := flag.String("spec", "", "path to the spec file (schema + tuples + views)")
	addr := flag.String("addr", ":8377", "listen address")
	cacheSize := flag.Int("cache", 0, "result-cache entries (0 = default 1024)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = default 30s, negative = none)")
	computeTimeout := flag.Duration("compute-timeout", 0, "detached cache-fill computation deadline (0 = 4×timeout, negative = none)")
	maxInFlight := flag.Int("max-inflight", 0, "admitted concurrent /cite requests (0 = 4×GOMAXPROCS, negative = unlimited)")
	parallelism := flag.Int("parallelism", 0, "engine worker-pool bound (0 = GOMAXPROCS)")
	polName := flag.String("policy", "minsize", "+R policy: minsize, maxcoverage, all")
	noCommit := flag.Bool("no-commit", false, "do not commit the loaded state (citations carry no fixity pin until POST /commit)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period")
	flag.Parse()

	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := spec.Load(string(raw))
	if err != nil {
		log.Fatal(err)
	}

	p := datacitation.DefaultPolicy()
	switch *polName {
	case "minsize":
		p.AltR = datacitation.SelectMinSize
	case "maxcoverage":
		p.AltR = datacitation.SelectMaxCoverage
	case "all":
		p.AltR = datacitation.SelectAllBranches
	default:
		log.Fatalf("unknown policy %q", *polName)
	}
	sys.SetPolicy(p)
	if *parallelism > 0 {
		sys.SetParallelism(*parallelism)
	}
	if !*noCommit {
		info := sys.Commit("citeserved load: " + *specPath)
		log.Printf("committed loaded state as version %d (%d tuples)", info.Version, info.Tuples)
	}

	srv := server.New(sys, server.Options{
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		ComputeTimeout: *computeTimeout,
		MaxInFlight:    *maxInFlight,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s on http://%s (%d views, epoch %d)",
		*specPath, ln.Addr(), sys.Registry().Len(), sys.Version())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (grace %s)", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("bye")
}
