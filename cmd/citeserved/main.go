// Command citeserved serves a citation-enabled database over HTTP — the
// paper's deployment model: the repository runs the citation engine as a
// service against its live, evolving database, and clients retrieve
// citations for the query results they used.
//
// It starts from either a spec file (see internal/spec) or a durable data
// directory, commits the loaded state as version 1 so every citation
// carries a fixity pin, and serves the internal/server endpoints until
// SIGINT/SIGTERM, then drains in-flight requests, checkpoints (when
// durable) and exits.
//
// Usage:
//
//	citeserved -spec db.dcs [-data-dir dir] [-addr :8377] [-cache 1024]
//	           [-timeout 30s] [-compute-timeout 0] [-max-inflight 0]
//	           [-parallelism 0] [-policy minsize|maxcoverage|all]
//	           [-fsync always|on-commit|interval] [-checkpoint-every 0]
//	           [-no-commit] [-trace-sample 1.0] [-trace-echo]
//	           [-trace-ring 64] [-slow-query 0] [-slow-query-log file]
//	           [-querystats 256]
//	citeserved -open dir [same serving flags]
//	citeserved -version
//
// Observability: every request gets a latency histogram observation on
// /metrics; sampled requests (-trace-sample, default all) additionally
// carry a span trace through the citation pipeline, retained in an
// in-memory ring served on GET /debug/traces. Requests slower than
// -slow-query are logged as JSON lines (to stderr, or -slow-query-log)
// with their full span tree. -trace-echo lets clients append ?trace=1
// to /cite and receive the span tree in the response envelope. Sampled
// traces also feed the per-query statistics store served on GET
// /debug/querystats (-querystats bounds the tracked fingerprints;
// cmd/citestat renders it as a live top-queries table). pprof is
// always mounted under /debug/pprof/.
//
// Durability: -spec with -data-dir initializes the directory from the
// spec and journals every subsequent mutation (POST /ingest batches,
// commits, view and policy changes) to a checksummed write-ahead log, so
// the whole version history survives a crash. -open recovers from such a
// directory — same version numbers, same snapshot contents, same digests
// — and continues journaling to it. Exactly one of -spec and -open must
// be given: a spec names a fresh state, a directory names a history, and
// silently combining them would fork that history.
//
// Quickstart against the repository's paper fixture:
//
//	citeserved -spec testdata/paper.dcs -data-dir ./data &
//	curl -s localhost:8377/healthz
//	curl -s -X POST localhost:8377/ingest \
//	     -d '{"relation": "Family", "insert": [[99, "Amylin", "A1"]]}'
//	curl -s -X POST localhost:8377/commit -d '{"message": "add amylin"}'
//	kill -9 %1   # crash: versions survive on disk
//	citeserved -open ./data &
//	curl -s localhost:8377/versions   # identical history
//
// Time travel: after further commits (POST /commit), any committed
// version can still be cited — the result is byte-identical to the
// citation generated while that version was live, answers from a cache
// that commits never invalidate, and unknown versions answer 404:
//
//	curl -s -X POST 'localhost:8377/cite?version=1' \
//	     -d '{"query": "Q(FName) :- Family(FID, FName, Desc)"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	datacitation "repro"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("citeserved: ")
	specPath := flag.String("spec", "", "path to the spec file (schema + tuples + views)")
	dataDir := flag.String("data-dir", "", "initialize this durable data directory from -spec and journal all mutations to it")
	openDir := flag.String("open", "", "recover from a durable data directory instead of a spec (mutually exclusive with -spec/-data-dir)")
	addr := flag.String("addr", ":8377", "listen address")
	cacheSize := flag.Int("cache", 0, "result-cache entries (0 = default 1024)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = default 30s, negative = none)")
	computeTimeout := flag.Duration("compute-timeout", 0, "detached cache-fill computation deadline (0 = 4×timeout, negative = none)")
	maxInFlight := flag.Int("max-inflight", 0, "admitted concurrent /cite+/ingest requests (0 = 4×GOMAXPROCS, negative = unlimited)")
	parallelism := flag.Int("parallelism", 0, "engine worker-pool bound (0 = GOMAXPROCS)")
	polName := flag.String("policy", "minsize", "+R policy: minsize, maxcoverage, all")
	fsyncMode := flag.String("fsync", "on-commit", "write-ahead log sync policy: always, on-commit, interval")
	checkpointEvery := flag.Int("checkpoint-every", 0, "automatic checkpoint after every N commits (0 = only at shutdown)")
	noCommit := flag.Bool("no-commit", false, "do not commit the loaded state (citations carry no fixity pin until POST /commit)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period")
	traceSample := flag.Float64("trace-sample", 0, "fraction of /cite requests span-traced (0 = default 1.0, negative = off)")
	traceEcho := flag.Bool("trace-echo", false, "allow clients to request their span tree with ?trace=1 on /cite")
	traceRing := flag.Int("trace-ring", 0, "recent traces retained for GET /debug/traces (0 = default 64, negative = off)")
	slowQuery := flag.Duration("slow-query", 0, "log requests at or over this duration with their span tree (0 = off)")
	slowQueryLog := flag.String("slow-query-log", "", "append slow-query JSON lines to this file instead of stderr")
	queryStats := flag.Int("querystats", 0, "query fingerprints tracked for GET /debug/querystats (0 = default 256, negative = off)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("citeserved %s %s\n", server.Version, runtime.Version())
		return
	}

	switch {
	case *specPath != "" && *openDir != "":
		log.Fatal("-spec and -open are mutually exclusive: a spec names a fresh state, a data directory names an existing history; pass exactly one")
	case *openDir != "" && *dataDir != "":
		log.Fatal("-open and -data-dir are mutually exclusive: -open already names the data directory it keeps journaling to")
	case *specPath == "" && *openDir == "":
		flag.Usage()
		os.Exit(2)
	}
	fsync, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatal(err)
	}
	if _, ok := core.PolicyByName(*polName); !ok {
		log.Fatalf("unknown policy %q", *polName)
	}
	durOpts := core.DurableOptions{Fsync: fsync, CheckpointEvery: *checkpointEvery}

	var sys *datacitation.System
	switch {
	case *openDir != "":
		start := time.Now()
		sys, err = core.Open(*openDir, durOpts)
		if err != nil {
			log.Fatalf("recovering %s: %v", *openDir, err)
		}
		// -policy only overrides the recovered (journaled) default when
		// the operator explicitly asked for it.
		explicitPolicy := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "policy" {
				explicitPolicy = true
			}
		})
		if explicitPolicy {
			if err := sys.SetPolicyNamed(*polName); err != nil {
				log.Fatal(err)
			}
		}
		stats, _ := sys.Durability()
		log.Printf("recovered %s in %s: version %d (%d tuples at head), %d views",
			*openDir, time.Since(start).Round(time.Millisecond), stats.RecoveredVersion,
			sys.Database().Size(), sys.Registry().Len())
	default:
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		sys, err = spec.Load(string(raw))
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SetPolicyNamed(*polName); err != nil {
			log.Fatal(err)
		}
		if *dataDir != "" {
			if durable.Initialized(*dataDir) {
				log.Fatalf("%s is already a data directory; recover from it with -open %s (without -spec) instead of re-initializing", *dataDir, *dataDir)
			}
			if err := sys.EnableDurability(*dataDir, durOpts); err != nil {
				log.Fatal(err)
			}
			log.Printf("journaling to %s (fsync %s)", *dataDir, fsync)
		}
		if !*noCommit {
			info := sys.Commit("citeserved load: " + *specPath)
			log.Printf("committed loaded state as version %d (%d tuples)", info.Version, info.Tuples)
		}
	}

	if *parallelism > 0 {
		sys.SetParallelism(*parallelism)
	}

	var slowLogW io.Writer
	if *slowQueryLog != "" {
		f, err := os.OpenFile(*slowQueryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening slow-query log: %v", err)
		}
		defer f.Close()
		slowLogW = f
	}

	srv := server.New(sys, server.Options{
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		ComputeTimeout: *computeTimeout,
		MaxInFlight:    *maxInFlight,
		TraceSample:    *traceSample,
		TraceEcho:      *traceEcho,
		TraceRing:      *traceRing,
		SlowQuery:      *slowQuery,
		SlowQueryLog:   slowLogW,
		QueryStats:     *queryStats,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	source := *specPath
	if source == "" {
		source = *openDir
	}
	log.Printf("serving %s on http://%s (%d views, epoch %d)",
		source, ln.Addr(), sys.Registry().Len(), sys.Version())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (grace %s)", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if stats, ok := sys.Durability(); ok && stats.Enabled {
		if err := sys.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		} else {
			log.Print("checkpointed")
		}
		if err := sys.CloseDurability(); err != nil {
			log.Printf("closing log: %v", err)
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("bye")
}
