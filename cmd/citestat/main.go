// Command citestat renders a citeserved server's per-query statistics
// (GET /debug/querystats) as a sorted top-queries table — the pg_top of
// the citation engine. One shot by default; -watch re-polls and shows
// interval deltas (calls/s, ms/call, hit-rate over the window) so a
// regression shows up as it happens, not diluted by the since-reset
// totals.
//
// Usage:
//
//	citestat [-url http://localhost:8377] [-sort total_time|calls|tuples]
//	         [-limit 20] [-watch 0]
//
// Columns (totals mode): CALLS, CONSTS (distinct constant bindings),
// TOTAL/MEAN/P95 (milliseconds), TUPLES (examined), HIT% (result-cache
// hits+coalesced over calls), QUERY (the constant-normalized
// fingerprint). With -watch, CALLS/s, ms/CALL and HIT% are computed
// over the polling interval per fingerprint; rows with no calls in the
// window are dropped. A server-side Reset (generation bump) clears the
// baseline instead of printing negative deltas.
//
// Recipes:
//
//	citestat -sort tuples -limit 5          # heaviest scans
//	citestat -watch 2s                      # live top-queries
//	curl -s localhost:8377/debug/querystats | jq '.rows[0]'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"
)

// row mirrors the server's qstats.RowSnapshot wire form (the fields the
// table needs; the endpoint serves more).
type row struct {
	Fingerprint    string  `json:"fingerprint"`
	Calls          int64   `json:"calls"`
	Errors         int64   `json:"errors"`
	DistinctConsts int64   `json:"distinct_consts"`
	TotalMS        float64 `json:"total_ms"`
	MeanMS         float64 `json:"mean_ms"`
	P95MS          float64 `json:"p95_ms"`
	TuplesExamined int64   `json:"tuples_examined"`
	ResultHits     int64   `json:"result_cache_hits"`
	ResultMisses   int64   `json:"result_cache_misses"`
	Coalesced      int64   `json:"result_cache_coalesced"`
}

// report mirrors the /debug/querystats envelope.
type report struct {
	K            int       `json:"k"`
	Tracked      int       `json:"tracked"`
	Generation   int64     `json:"generation"`
	Since        time.Time `json:"since"`
	Evicted      int64     `json:"evicted_total"`
	Observations int64     `json:"observations_total"`
	Rows         []row     `json:"rows"`
}

func fetch(client *http.Client, url string) (*report, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var rep report
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %v", url, err)
	}
	return &rep, nil
}

// hitRate is the fraction of calls that avoided an engine computation
// (result-cache hits plus coalesced joins on someone else's miss).
func hitRate(hits, coalesced, calls int64) float64 {
	if calls == 0 {
		return 0
	}
	return 100 * float64(hits+coalesced) / float64(calls)
}

// clip bounds the fingerprint column so one long query cannot wrap the
// whole table.
func clip(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max-1] + "…"
}

func printTotals(w io.Writer, rep *report) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CALLS\tCONSTS\tTOTALms\tMEANms\tP95ms\tTUPLES\tHIT%\tQUERY")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.2f\t%.2f\t%d\t%.0f\t%s\n",
			r.Calls, r.DistinctConsts, r.TotalMS, r.MeanMS, r.P95MS,
			r.TuplesExamined, hitRate(r.ResultHits, r.Coalesced, r.Calls),
			clip(r.Fingerprint, 80))
	}
	tw.Flush()
	fmt.Fprintf(w, "\n%d/%d fingerprints tracked, %d observations, %d evicted (generation %d, since %s)\n",
		rep.Tracked, rep.K, rep.Observations, rep.Evicted, rep.Generation,
		rep.Since.Local().Format(time.RFC3339))
}

// printDeltas renders one watch interval: per-fingerprint differences
// against the previous poll, normalized per second.
func printDeltas(w io.Writer, prev, cur *report, dt time.Duration) {
	base := make(map[string]row, len(prev.Rows))
	for _, r := range prev.Rows {
		base[r.Fingerprint] = r
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CALLS/s\tms/CALL\tTUPLES/s\tHIT%\tQUERY")
	shown := 0
	for _, r := range cur.Rows {
		p := base[r.Fingerprint] // zero row for a fingerprint new this window
		calls := r.Calls - p.Calls
		if calls <= 0 {
			continue
		}
		shown++
		totalMS := r.TotalMS - p.TotalMS
		tuples := r.TuplesExamined - p.TuplesExamined
		hits := r.ResultHits - p.ResultHits
		coal := r.Coalesced - p.Coalesced
		sec := dt.Seconds()
		fmt.Fprintf(tw, "%.1f\t%.2f\t%.0f\t%.0f\t%s\n",
			float64(calls)/sec, totalMS/float64(calls), float64(tuples)/sec,
			hitRate(hits, coal, calls), clip(r.Fingerprint, 80))
	}
	tw.Flush()
	if shown == 0 {
		fmt.Fprintln(w, "(no calls this interval)")
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("citestat: ")
	url := flag.String("url", "http://localhost:8377", "citeserved base URL")
	sortKey := flag.String("sort", "total_time", "row order: total_time, calls, tuples")
	limit := flag.Int("limit", 20, "rows shown (0 = all)")
	watch := flag.Duration("watch", 0, "re-poll at this interval and print per-interval deltas (0 = one shot)")
	flag.Parse()

	endpoint := strings.TrimSuffix(*url, "/") + "/debug/querystats?sort=" + *sortKey
	if *limit > 0 && *watch <= 0 {
		// In watch mode the poll stays unbounded: a delta needs the
		// previous poll's row even when the fingerprint just fell out of
		// the top N.
		endpoint += fmt.Sprintf("&limit=%d", *limit)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	rep, err := fetch(client, endpoint)
	if err != nil {
		log.Fatal(err)
	}
	if *watch <= 0 {
		printTotals(os.Stdout, rep)
		return
	}

	prev := rep
	last := time.Now()
	ticker := time.NewTicker(*watch)
	defer ticker.Stop()
	for range ticker.C {
		cur, err := fetch(client, endpoint)
		if err != nil {
			log.Print(err)
			continue
		}
		now := time.Now()
		fmt.Printf("\n-- %s (interval %s) --\n", now.Format("15:04:05"), now.Sub(last).Round(time.Millisecond))
		if cur.Generation != prev.Generation {
			// The server was reset between polls: totals restarted from
			// zero, so this window has no valid baseline.
			fmt.Printf("(stats reset: generation %d -> %d; rebaselining)\n", prev.Generation, cur.Generation)
		} else {
			printDeltas(os.Stdout, prev, cur, now.Sub(last))
		}
		prev, last = cur, now
	}
}
