// Command citebench runs the experiment suite documented in EXPERIMENTS.md
// and prints one table per experiment. The source paper has no measured
// tables (it is a vision paper); each table here operationalizes one of
// its prose claims — see the "claim" line above each table.
//
// Usage:
//
//	citebench            # run everything
//	citebench -only E2   # run one experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("citebench: ")
	only := flag.String("only", "", "run a single experiment (E0..E8)")
	flag.Parse()

	if *only == "" {
		if err := experiments.All(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	runners := map[string]func() (*experiments.Table, error){
		"E0": experiments.E0PaperExample,
		"E1": experiments.E1RewritingSearch,
		"E2": experiments.E2CitationSize,
		"E3": experiments.E3GenerationLatency,
		"E4": experiments.E4Incremental,
		"E5": experiments.E5MiniConVsBucket,
		"E6": experiments.E6Fixity,
		"E7": experiments.E7Coverage,
		"E8": experiments.E8AnnotationOverhead,
		"E9": experiments.E9ViewAdvisor,
	}
	run, ok := runners[strings.ToUpper(*only)]
	if !ok {
		log.Fatalf("unknown experiment %q (want E0..E9)", *only)
	}
	t, err := run()
	if err != nil {
		log.Fatal(err)
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
