// Command citebench runs the experiment suite documented in EXPERIMENTS.md
// and prints one table per experiment. The source paper has no measured
// tables (it is a vision paper); each table here operationalizes one of
// its prose claims — see the "claim" line above each table.
//
// Usage:
//
//	citebench             # run everything
//	citebench -only E2    # run one experiment
//	citebench -json       # emit the tables as a JSON array
//	citebench -only E10 -json
package main

import (
	"flag"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("citebench: ")
	suite := experiments.Suite()
	first, last := suite[0].ID, suite[len(suite)-1].ID
	only := flag.String("only", "", "run a single experiment ("+first+".."+last+")")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of aligned tables")
	flag.Parse()

	selected := suite
	if *only != "" {
		selected = nil
		for _, e := range suite {
			if e.ID == strings.ToUpper(*only) {
				selected = []experiments.Experiment{e}
				break
			}
		}
		if selected == nil {
			log.Fatalf("unknown experiment %q (want %s..%s)", *only, first, last)
		}
	}

	if *asJSON {
		var tables []*experiments.Table
		for _, e := range selected {
			t, err := e.Run()
			if err != nil {
				log.Fatal(err)
			}
			tables = append(tables, t)
		}
		if err := experiments.WriteJSON(os.Stdout, tables); err != nil {
			log.Fatal(err)
		}
		return
	}
	// Table mode streams: each table prints as its experiment completes.
	for _, e := range selected {
		t, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := t.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
