// Command citeviews analyzes how well a spec file's citation views cover a
// query workload — the paper's §3 "defining citations" question: are these
// views the "best" ones for the expected workload?
//
// Usage:
//
//	citeviews -spec db.dcs                       # validate + summarize views
//	citeviews -spec db.dcs -queries workload.cq  # coverage report
//	citeviews -spec db.dcs -random 100           # random-workload coverage
//	citeviews -spec db.dcs -random 100 -json     # machine-readable report
//
// -json emits the whole report as one JSON object (views, coverage,
// advisor recommendations), for parity with citebench -json; static
// citation records use the same canonical encoding the file renderer and
// cmd/citeserved emit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/advisor"
	"repro/internal/cq"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/workload"
)

// coverageReport is the -json form of the workload coverage analysis.
type coverageReport struct {
	Total     int     `json:"total"`
	Covered   int     `json:"covered"`
	Partial   int     `json:"partial"`
	Uncovered int     `json:"uncovered"`
	Ratio     float64 `json:"ratio"`
}

// advisorReport is the -json form of the view-advisor recommendation.
type advisorReport struct {
	Budget  int                 `json:"budget"`
	Covered int                 `json:"covered"`
	Total   int                 `json:"total"`
	Ratio   float64             `json:"ratio"`
	Views   []advisorViewReport `json:"views"`
}

type advisorViewReport struct {
	Query        string `json:"query"`
	Source       string `json:"source"`
	MarginalGain int    `json:"marginal_gain"`
}

// report is the full citeviews output in machine-readable form. Views
// use the serving layer's wire shape, so GET /views and citeviews -json
// emit the same objects.
type report struct {
	Relations int               `json:"relations"`
	Views     []server.ViewInfo `json:"views"`
	Coverage  *coverageReport   `json:"coverage,omitempty"`
	Advisor   *advisorReport    `json:"advisor,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("citeviews: ")
	specPath := flag.String("spec", "", "path to the spec file")
	queriesPath := flag.String("queries", "", "optional workload file (one query per line)")
	randomN := flag.Int("random", 0, "generate a random workload of this size instead")
	seed := flag.Int64("seed", 1, "random workload seed")
	suggest := flag.Int("suggest", 0, "recommend up to this many views for the workload (view advisor)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	flag.Parse()

	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := spec.Load(string(raw))
	if err != nil {
		log.Fatal(err)
	}
	reg := sys.Registry()

	rep := report{Relations: sys.Database().Schema().Len()}
	for _, v := range reg.Views() {
		rep.Views = append(rep.Views, server.NewViewInfo(v))
	}

	var queries []*cq.Query
	switch {
	case *queriesPath != "":
		qraw, err := os.ReadFile(*queriesPath)
		if err != nil {
			log.Fatal(err)
		}
		queries, err = cq.ParseProgram(string(qraw))
		if err != nil {
			log.Fatal(err)
		}
	case *randomN > 0:
		cfg := workload.DefaultConfig()
		cfg.Queries = *randomN
		cfg.Seed = *seed
		queries, err = workload.Generate(sys.Database().Schema(), cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	if len(queries) > 0 {
		cov, err := reg.AnalyzeCoverage(queries, rewrite.MethodMiniCon)
		if err != nil {
			log.Fatal(err)
		}
		rep.Coverage = &coverageReport{
			Total:     cov.Total,
			Covered:   cov.Covered,
			Partial:   cov.Partial,
			Uncovered: cov.Uncovered,
			Ratio:     cov.CoverageRatio(),
		}
		if *suggest > 0 {
			rec, err := advisor.Recommend(sys.Database().Schema(), queries, advisor.Options{
				MaxViews: *suggest,
				Method:   rewrite.MethodMiniCon,
			})
			if err != nil {
				log.Fatal(err)
			}
			adv := &advisorReport{
				Budget:  *suggest,
				Covered: rec.Covered,
				Total:   rec.Total,
				Ratio:   rec.CoverageRatio(),
			}
			for i, v := range rec.Views {
				adv.Views = append(adv.Views, advisorViewReport{
					Query:        v.Query.String(),
					Source:       v.Source,
					MarginalGain: rec.MarginalGain[i],
				})
			}
			rep.Advisor = adv
		}
	}

	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	printText(sys.Database().Schema().String(), rep)
}

// printText renders the report in the human-readable layout.
func printText(schemaText string, rep report) {
	fmt.Printf("schema (%d relations):\n%s\n\n", rep.Relations, schemaText)
	fmt.Printf("views (%d):\n", len(rep.Views))
	for _, v := range rep.Views {
		kind := "unparameterized"
		if v.Parameterized {
			kind = fmt.Sprintf("parameterized by %v", v.Params)
		}
		fmt.Printf("  %s  [%s, %d citation quer%s]\n", v.Query, kind,
			v.CitationQueries, plural(v.CitationQueries, "y", "ies"))
	}
	if rep.Coverage != nil {
		fmt.Printf("\ncoverage over %d queries:\n", rep.Coverage.Total)
		fmt.Printf("  covered (complete rewriting): %d\n", rep.Coverage.Covered)
		fmt.Printf("  partially covered:            %d\n", rep.Coverage.Partial)
		fmt.Printf("  uncovered:                    %d\n", rep.Coverage.Uncovered)
		fmt.Printf("  coverage ratio:               %.2f\n", rep.Coverage.Ratio)
	}
	if rep.Advisor != nil {
		fmt.Printf("\nview advisor (budget %d): %d view(s) covering %d/%d queries (%.2f)\n",
			rep.Advisor.Budget, len(rep.Advisor.Views), rep.Advisor.Covered,
			rep.Advisor.Total, rep.Advisor.Ratio)
		for _, v := range rep.Advisor.Views {
			fmt.Printf("  +%d queries  %s  [%s]\n", v.MarginalGain, v.Query, v.Source)
		}
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
