// Command citeviews analyzes how well a spec file's citation views cover a
// query workload — the paper's §3 "defining citations" question: are these
// views the "best" ones for the expected workload?
//
// Usage:
//
//	citeviews -spec db.dcs                       # validate + summarize views
//	citeviews -spec db.dcs -queries workload.cq  # coverage report
//	citeviews -spec db.dcs -random 100           # random-workload coverage
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/advisor"
	"repro/internal/cq"
	"repro/internal/rewrite"
	"repro/internal/spec"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("citeviews: ")
	specPath := flag.String("spec", "", "path to the spec file")
	queriesPath := flag.String("queries", "", "optional workload file (one query per line)")
	randomN := flag.Int("random", 0, "generate a random workload of this size instead")
	seed := flag.Int64("seed", 1, "random workload seed")
	suggest := flag.Int("suggest", 0, "recommend up to this many views for the workload (view advisor)")
	flag.Parse()

	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := spec.Load(string(raw))
	if err != nil {
		log.Fatal(err)
	}
	reg := sys.Registry()

	fmt.Printf("schema (%d relations):\n%s\n\n", sys.Database().Schema().Len(), sys.Database().Schema())
	fmt.Printf("views (%d):\n", reg.Len())
	for _, v := range reg.Views() {
		kind := "unparameterized"
		if v.Query.IsParameterized() {
			kind = fmt.Sprintf("parameterized by %v", v.Query.Params)
		}
		fmt.Printf("  %s  [%s, %d citation quer%s]\n", v.Query, kind,
			len(v.Citations), plural(len(v.Citations), "y", "ies"))
	}

	var queries []*cq.Query
	switch {
	case *queriesPath != "":
		qraw, err := os.ReadFile(*queriesPath)
		if err != nil {
			log.Fatal(err)
		}
		queries, err = cq.ParseProgram(string(qraw))
		if err != nil {
			log.Fatal(err)
		}
	case *randomN > 0:
		cfg := workload.DefaultConfig()
		cfg.Queries = *randomN
		cfg.Seed = *seed
		queries, err = workload.Generate(sys.Database().Schema(), cfg)
		if err != nil {
			log.Fatal(err)
		}
	default:
		return
	}

	rep, err := reg.AnalyzeCoverage(queries, rewrite.MethodMiniCon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoverage over %d queries:\n", rep.Total)
	fmt.Printf("  covered (complete rewriting): %d\n", rep.Covered)
	fmt.Printf("  partially covered:            %d\n", rep.Partial)
	fmt.Printf("  uncovered:                    %d\n", rep.Uncovered)
	fmt.Printf("  coverage ratio:               %.2f\n", rep.CoverageRatio())

	if *suggest > 0 {
		rec, err := advisor.Recommend(sys.Database().Schema(), queries, advisor.Options{
			MaxViews: *suggest,
			Method:   rewrite.MethodMiniCon,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nview advisor (budget %d): %d view(s) covering %d/%d queries (%.2f)\n",
			*suggest, len(rec.Views), rec.Covered, rec.Total, rec.CoverageRatio())
		for i, v := range rec.Views {
			fmt.Printf("  +%d queries  %s  [%s]\n", rec.MarginalGain[i], v.Query, v.Source)
		}
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
