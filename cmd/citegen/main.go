// Command citegen generates a citation for a conjunctive query over a
// database described by a spec file (see internal/spec for the format).
//
// Usage:
//
//	citegen -spec db.dcs -query "Q(FName) :- Family(FID, FName, Desc)" \
//	        [-format text|bibtex|ris|xml|json] [-policy minsize|maxcoverage|all] \
//	        [-partial] [-pruned] [-explain] [-json] [-at N]
//	citegen -open dir -query "..." [same flags]
//
// -at N cites against committed version N instead of the head — the
// loaded state commits as version 1, so -at is useful with spec files
// that script further commits, and it exercises exactly the
// System.CiteContext(…, AtVersion(N)) path a server runs for
// POST /cite?version=N.
//
// -open dir starts from a durable data directory (one citeserved built
// with -data-dir) instead of a spec: the whole committed version history
// is recovered read-only — nothing is committed and the directory is not
// written — so -at N can re-derive the citation any pinned version
// handed out before a crash. -spec and -open are mutually exclusive.
//
// -json emits the full machine-readable envelope (record, text, fixity
// pin) that cmd/citeserved answers on POST /cite — the same citation
// renders identically on disk and on the wire. -format json, by
// contrast, prints only the record object.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	datacitation "repro"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("citegen: ")
	specPath := flag.String("spec", "", "path to the spec file (schema + tuples + views)")
	openDir := flag.String("open", "", "durable data directory to recover (read-only) instead of a spec")
	querySrc := flag.String("query", "", "conjunctive query to cite")
	outFormat := flag.String("format", "text", "output format: text, bibtex, ris, xml, json")
	polName := flag.String("policy", "minsize", "+R policy: minsize, maxcoverage, all")
	partial := flag.Bool("partial", false, "fall back to partial rewritings")
	pruned := flag.Bool("pruned", false, "cost-pruned generation (evaluate one rewriting)")
	explain := flag.Bool("explain", false, "print rewritings and formal citation expressions")
	bibKey := flag.String("key", "datacitation", "BibTeX citation key")
	asJSON := flag.Bool("json", false, "emit the citeserved wire envelope (record + text + pin) as JSON")
	atVersion := flag.Int("at", 0, "cite against committed version N instead of the head (0 = head)")
	flag.Parse()

	if *specPath != "" && *openDir != "" {
		log.Fatal("-spec and -open are mutually exclusive: pass exactly one source")
	}
	if (*specPath == "" && *openDir == "") || *querySrc == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, ok := core.PolicyByName(*polName)
	if !ok {
		log.Fatalf("unknown policy %q", *polName)
	}

	var sys *datacitation.System
	if *openDir != "" {
		var err error
		sys, err = core.Open(*openDir, core.DurableOptions{ReadOnly: true})
		if err != nil {
			log.Fatalf("recovering %s: %v", *openDir, err)
		}
	} else {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		sys, err = spec.Load(string(raw))
		if err != nil {
			log.Fatal(err)
		}
	}
	sys.Generator().AllowPartial = *partial
	sys.Generator().CostPruned = *pruned
	// Spec-loaded state commits so the citation carries a pin; a
	// recovered directory already has its committed history and must not
	// gain a version from a read-only tool.
	if *specPath != "" {
		sys.Commit("citegen load")
	}

	// The policy travels as a per-call option (the context-first request
	// API) instead of mutating the system default; -at selects the target
	// version the same way POST /cite?version=N does. With -open, the
	// recovered (journaled) default policy governs unless -policy was
	// given explicitly — silently forcing the flag default would re-derive
	// a different citation than the one the directory's server pinned.
	var opts []datacitation.CiteOption
	explicitPolicy := *specPath != ""
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "policy" {
			explicitPolicy = true
		}
	})
	if explicitPolicy {
		opts = append(opts, datacitation.WithPolicy(p))
	}
	if *atVersion > 0 {
		opts = append(opts, datacitation.AtVersion(datacitation.Version(*atVersion)))
	}
	cite, err := sys.CiteContext(context.Background(), *querySrc, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// -json owns stdout: it must stay a single parseable document, so it
	// preempts -explain's text blocks and the -format rendering.
	if *asJSON {
		out, err := json.MarshalIndent(server.NewCiteResult(*querySrc, cite), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	if *explain {
		fmt.Printf("-- %d rewriting(s) --\n", len(cite.Result.Rewritings))
		for _, rw := range cite.Result.Rewritings {
			fmt.Printf("  %s\n", rw)
		}
		fmt.Printf("-- %d answer tuple(s) --\n", len(cite.Result.Tuples))
		for _, tc := range cite.Result.Tuples {
			fmt.Printf("  %s\n    formal: %s\n    selected: %s\n", tc.Tuple, tc.Expr, tc.Selected)
		}
		fmt.Printf("-- stats: rewritings=%d evaluated=%d candidates=%d atoms=%d pruned=%v --\n",
			cite.Result.Stats.RewritingsFound, cite.Result.Stats.RewritingsEvaluated,
			cite.Result.Stats.CandidatesExamined, cite.Result.Stats.AtomsResolved,
			cite.Result.Stats.Pruned)
	}

	switch *outFormat {
	case "text":
		fmt.Println(cite.Text())
	case "bibtex":
		fmt.Println(cite.BibTeX(*bibKey))
	case "ris":
		fmt.Print(cite.RIS())
	case "xml":
		out, err := cite.XML()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	case "json":
		out, err := cite.JSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	default:
		log.Fatalf("unknown format %q", *outFormat)
	}
}
