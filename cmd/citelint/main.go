// Command citelint runs the repo's invariant analyzer suite
// (internal/lint) over the given packages — a multichecker in the
// style of golang.org/x/tools/go/analysis/multichecker, built on the
// standard library alone.
//
// Usage:
//
//	go run ./cmd/citelint ./...          # the CI invocation
//	go run ./cmd/citelint -list          # describe the analyzers
//	go run ./cmd/citelint -run spanend,walerr ./internal/...
//
// Non-test files are analyzed. Exit status: 0 clean, 1 findings,
// 2 load or type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: citelint [-list] [-run names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("citelint: unknown analyzer %q (try -list)", name)
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld, err := load.NewLoader(".")
	if err != nil {
		fatalf("citelint: %v", err)
	}
	paths, err := ld.Expand(patterns)
	if err != nil {
		fatalf("citelint: %v", err)
	}
	if len(paths) == 0 {
		fatalf("citelint: no packages match %v", patterns)
	}

	findings := 0
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			fatalf("citelint: %v", err)
		}
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "%v\n", e)
			}
			fatalf("citelint: %s does not type-check", path)
		}
		for _, a := range suite {
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				fatalf("citelint: %s on %s: %v", a.Name, path, err)
			}
			for _, d := range pass.Diagnostics() {
				fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "citelint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
